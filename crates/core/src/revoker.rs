//! The revoker state machines: CHERIvoke, Cornucopia, Cornucopia Reloaded,
//! Paint+sync, and the CHERIoT-style load filter.
//!
//! The revoker is deliberately *driven* rather than threaded: a simulator
//! (or test) interleaves application work with [`Revoker::background_step`]
//! slices and routes load-barrier faults to
//! [`Revoker::handle_load_fault`]. Every operation returns its cycle cost,
//! and all memory traffic goes through the machine's cache model, so the
//! evaluation can account wall time, CPU time, and DRAM traffic exactly as
//! the paper does (§5).

use crate::bitmap::RevocationBitmap;
use crate::epoch::EpochClock;
use crate::hoards::KernelHoards;
use crate::worklist::ShardedWorklist;
use cheri_cap::Capability;
use cheri_mem::{CoreId, PAGE_SIZE};
use cheri_vm::Machine;
use std::collections::BTreeSet;

/// Which revocation algorithm to run (paper §5: the four studied systems,
/// plus the CHERIoT-style filter of §6.3 as an ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Single stop-the-world sweep per epoch (Xia et al., MICRO'19).
    CheriVoke,
    /// Concurrent sweep + stop-the-world re-sweep of re-dirtied pages
    /// (Filardo et al., Oakland'20), using the capability store barrier.
    Cornucopia,
    /// Cornucopia Reloaded: brief STW (generation flip + register/hoard
    /// scan) + concurrent sweep with on-demand load-barrier faults.
    Reloaded,
    /// Quarantine bookkeeping only; **no revocation, no temporal safety**.
    /// Used to characterize the prerequisite overheads (paper §5).
    PaintSync,
    /// CHERIoT-style non-trapping load filter: every capability load probes
    /// the revocation bitmap and clears the tag of revoked capabilities on
    /// their way into the register file (§6.3).
    CheriotFilter,
}

impl Strategy {
    /// Whether the strategy actually expunges stale capabilities.
    #[must_use]
    pub fn provides_safety(&self) -> bool {
        !matches!(self, Strategy::PaintSync)
    }

    /// Short display name matching the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::CheriVoke => "CHERIvoke",
            Strategy::Cornucopia => "Cornucopia",
            Strategy::Reloaded => "Reloaded",
            Strategy::PaintSync => "Paint+sync",
            Strategy::CheriotFilter => "CHERIoT-filter",
        }
    }
}

/// How PTE load-generation state is maintained per epoch (§4.1 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PteUpdateMode {
    /// The paper's design: flip only the in-core generation registers at
    /// epoch start; each PTE is written once, when visited.
    #[default]
    Generation,
    /// The strawman rejected in §4.1: rewrite every PTE (clearing a
    /// load-permission flag) at epoch start, with TLB shootdowns, and again
    /// on visit — twice per epoch.
    RewriteEachEpoch,
}

/// Revoker configuration.
#[derive(Debug, Clone)]
pub struct RevokerConfig {
    /// The algorithm to run.
    pub strategy: Strategy,
    /// Core(s) executing background revocation work (§7.1: more than one
    /// enables parallel background sweeping).
    pub revoker_cores: Vec<CoreId>,
    /// PTE maintenance mode (§4.1 ablation).
    pub pte_mode: PteUpdateMode,
    /// §7.6 proposal: put capability-clean pages in an "always trap" state
    /// so their generations need no maintenance.
    pub always_trap_clean: bool,
    /// Cycles to synchronize/quiesce the requesting thread's own core.
    pub stw_sync_base_cycles: u64,
    /// Additional cycles per *other* busy application thread that must be
    /// interrupted and quiesced (syscall completion/abort; §4.4, §5.4).
    pub stw_sync_per_busy_thread: u64,
    /// Trap entry/exit overhead for a load-barrier fault.
    pub fault_trap_cycles: u64,
}

impl Default for RevokerConfig {
    fn default() -> Self {
        RevokerConfig {
            strategy: Strategy::Reloaded,
            revoker_cores: vec![1],
            pte_mode: PteUpdateMode::Generation,
            always_trap_clean: false,
            stw_sync_base_cycles: 40_000,       // ~16 us at 2.5 GHz
            stw_sync_per_busy_thread: 760_000,  // ~300 us: thread_single() + syscalls
            fault_trap_cycles: 3_000,           // ~1.2 us trap entry/exit
        }
    }
}

/// Phases whose durations the evaluation reports (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// CHERIvoke's single world-stopped sweep.
    CheriVokeStw,
    /// Cornucopia's concurrent sweep.
    CornucopiaConcurrent,
    /// Cornucopia's world-stopped re-sweep.
    CornucopiaStw,
    /// Reloaded's world-stopped entry (generation flip + register scan).
    ReloadedStw,
    /// Reloaded's background concurrent sweep.
    ReloadedConcurrent,
    /// Cumulative load-barrier fault handling in application threads
    /// during one Reloaded epoch.
    ReloadedFaults,
}

impl PhaseKind {
    /// Display label matching Figure 9's legend.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::CheriVokeStw => "CHERIvoke STW",
            PhaseKind::CornucopiaConcurrent => "Cornucopia concurrent",
            PhaseKind::CornucopiaStw => "Cornucopia STW",
            PhaseKind::ReloadedStw => "Reloaded STW",
            PhaseKind::ReloadedConcurrent => "Reloaded concurrent",
            PhaseKind::ReloadedFaults => "Reloaded faults (cum.)",
        }
    }

    /// Inverse of [`PhaseKind::label`], for consumers deserializing phase
    /// records from exported documents (e.g. the bench orchestrator's
    /// checkpoint files).
    #[must_use]
    pub fn from_label(label: &str) -> Option<PhaseKind> {
        const ALL: [PhaseKind; 6] = [
            PhaseKind::CheriVokeStw,
            PhaseKind::CornucopiaConcurrent,
            PhaseKind::CornucopiaStw,
            PhaseKind::ReloadedStw,
            PhaseKind::ReloadedConcurrent,
            PhaseKind::ReloadedFaults,
        ];
        ALL.into_iter().find(|k| k.label() == label)
    }
}

/// One phase duration observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Epoch ordinal (counting completed revocation passes).
    pub epoch_index: u64,
    /// Which phase.
    pub kind: PhaseKind,
    /// Duration in cycles.
    pub cycles: u64,
}

/// A typed revoker event, recorded (when event recording is enabled) for
/// the telemetry layer. Untimestamped: the driving simulator owns the wall
/// clock and stamps events as it drains the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RevokerEvent {
    /// A revocation pass began; the epoch counter is now odd (§2.2.3).
    EpochBegin {
        /// The epoch counter value after entry.
        epoch: u64,
    },
    /// A revocation pass completed; the epoch counter is now even.
    EpochEnd {
        /// The epoch counter value after completion.
        epoch: u64,
        /// Pages content-scanned during this pass (lifetime counter).
        pages_swept: u64,
        /// Capabilities revoked so far (lifetime counter).
        caps_revoked: u64,
    },
    /// An application thread took (and the kernel healed) a load-barrier
    /// fault (§4.3).
    LoadFaultHandled {
        /// Faulting virtual address.
        vaddr: u64,
        /// Core that faulted.
        core: CoreId,
        /// Cycles charged to the faulting thread.
        cycles: u64,
    },
}

/// Aggregate revoker statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct RevStats {
    /// Completed revocation passes.
    pub epochs: u64,
    /// Page content scans performed (all phases).
    pub pages_swept: u64,
    /// Cheap page visits (generation update only, no content scan).
    pub pages_visited_clean: u64,
    /// Capabilities tested against the bitmap.
    pub caps_checked: u64,
    /// Capabilities revoked (tags cleared), including registers/hoards.
    pub caps_revoked: u64,
    /// Load-barrier faults handled.
    pub load_faults: u64,
    /// Cycles spent handling load-barrier faults (application threads).
    pub fault_cycles: u64,
    /// Total world-stopped cycles.
    pub stw_cycles: u64,
    /// Total background (concurrent) cycles.
    pub concurrent_cycles: u64,
    /// Capabilities filtered by the CHERIoT-style load filter.
    pub filtered_loads: u64,
    /// Read-only pages upgraded to writable because a capability on them
    /// had to be revoked (§4.3's heuristic; pages needing no writes are
    /// put back into service untouched).
    pub ro_pages_upgraded: u64,
}

/// Result of a [`Revoker::background_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// No revocation is in flight.
    Idle,
    /// Background work consumed `used` cycles; more remains.
    Working {
        /// Cycles consumed on the revoker core(s).
        used: u64,
    },
    /// Concurrent work is done but the strategy needs a final
    /// stop-the-world phase — call [`Revoker::finish_stw`]. Reported in
    /// the same step that drains the last page, so `used` carries that
    /// step's critical-path cycles (0 when re-polled while waiting).
    NeedsFinalStw {
        /// Cycles consumed on the revoker core(s) in this step.
        used: u64,
    },
    /// The epoch completed during this step. `used` cycles were consumed.
    Finished {
        /// Cycles consumed on the revoker core(s).
        used: u64,
    },
}

#[derive(Debug)]
enum State {
    Idle,
    /// Cornucopia's concurrent phase over a snapshot of tracked pages.
    CornConcurrent { work: ShardedWorklist },
    /// Cornucopia: concurrent work done, awaiting the final STW.
    CornAwaitStw,
    /// Reloaded's (or CHERIoT's) concurrent phase.
    RelConcurrent { work: ShardedWorklist },
}

/// The in-kernel revocation subsystem.
///
/// Owns the [`RevocationBitmap`], the [`EpochClock`], the [`KernelHoards`],
/// and the sticky set of pages known to (have) hold capabilities. See the
/// crate docs for the driving protocol.
#[derive(Debug)]
pub struct Revoker {
    cfg: RevokerConfig,
    bitmap: RevocationBitmap,
    epoch: EpochClock,
    hoards: KernelHoards,
    state: State,
    /// Pages ever observed capability-dirty. Our re-implementation (like
    /// the paper's, §4.5) never un-tracks a page that becomes clean.
    tracked: BTreeSet<u64>,
    stats: RevStats,
    phases: Vec<PhaseRecord>,
    /// Cycles of fault handling accumulated in the current epoch.
    epoch_fault_cycles: u64,
    /// Concurrent-phase critical-path cycles accumulated in the current
    /// epoch (max across revoker cores per step).
    epoch_concurrent_cycles: u64,
    /// Lifetime concurrent-sweep cycles per configured revoker core,
    /// aligned with `cfg.revoker_cores`.
    core_concurrent_cycles: Vec<u64>,
    /// Reusable page-visit buffer: `sweep_page_contents` snapshots each
    /// page's tagged capabilities here instead of allocating a `Vec` per
    /// page (the sweep visits every mapped page each epoch).
    scratch: Vec<(u64, Capability)>,
    /// Whether revoker events are appended to `events` (off by default).
    log_events: bool,
    events: Vec<RevokerEvent>,
}

impl Revoker {
    /// Creates a revoker whose bitmap covers `[heap_base, heap_base+len)`.
    #[must_use]
    pub fn new(cfg: RevokerConfig, heap_base: u64, heap_len: u64) -> Self {
        assert!(!cfg.revoker_cores.is_empty(), "need at least one revoker core");
        Revoker {
            bitmap: RevocationBitmap::new(heap_base, heap_len),
            core_concurrent_cycles: vec![0; cfg.revoker_cores.len()],
            cfg,
            epoch: EpochClock::new(),
            hoards: KernelHoards::new(),
            state: State::Idle,
            tracked: BTreeSet::new(),
            stats: RevStats::default(),
            phases: Vec::new(),
            epoch_fault_cycles: 0,
            epoch_concurrent_cycles: 0,
            scratch: Vec::new(),
            log_events: false,
            events: Vec::new(),
        }
    }

    /// Enables or disables revoker event recording. Disabled (the
    /// default), the revoker never touches its event buffer; simulated
    /// counters are identical either way.
    pub fn set_event_recording(&mut self, on: bool) {
        self.log_events = on;
        if !on {
            self.events.clear();
        }
    }

    /// Moves all recorded events into `out`, clearing the internal log.
    pub fn drain_events_into(&mut self, out: &mut Vec<RevokerEvent>) {
        out.append(&mut self.events);
    }

    /// The strategy in use.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.cfg.strategy
    }

    /// The publicly readable epoch counter value (§2.2.3).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.value()
    }

    /// Whether a revocation pass is in flight.
    #[must_use]
    pub fn is_revoking(&self) -> bool {
        self.epoch.is_revoking()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> RevStats {
        self.stats
    }

    /// Recorded phase durations (Figure 9's raw data).
    #[must_use]
    pub fn phase_records(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// The configured revoker cores, in shard order.
    #[must_use]
    pub fn cores(&self) -> &[CoreId] {
        &self.cfg.revoker_cores
    }

    /// Lifetime concurrent-sweep cycles accumulated by each revoker core,
    /// aligned with [`Revoker::cores`]. The critical path of one step is
    /// the max entry's growth; the sum is total CPU time spent sweeping.
    #[must_use]
    pub fn per_core_concurrent_cycles(&self) -> &[u64] {
        &self.core_concurrent_cycles
    }

    /// The kernel hoards (workloads deposit/divulge through these).
    pub fn hoards_mut(&mut self) -> &mut KernelHoards {
        &mut self.hoards
    }

    /// Read-only view of the bitmap.
    #[must_use]
    pub fn bitmap(&self) -> &RevocationBitmap {
        &self.bitmap
    }

    /// User-space shim painting `[base, base+len)` into quarantine.
    /// Returns the cycle cost, charged to `core`.
    pub fn paint(&mut self, machine: &mut Machine, core: CoreId, base: u64, len: u64) -> u64 {
        self.bitmap.paint(machine, core, base, len)
    }

    /// User-space shim clearing quarantine marks after a completed epoch.
    pub fn unpaint(&mut self, machine: &mut Machine, core: CoreId, base: u64, len: u64) -> u64 {
        self.bitmap.unpaint(machine, core, base, len)
    }

    // ------------------------------------------------------------------
    // Epoch driving
    // ------------------------------------------------------------------

    /// Begins a revocation pass. Performs the strategy's *initial*
    /// synchronous work and returns the stop-the-world pause in cycles,
    /// which the caller must charge to all application threads.
    ///
    /// `busy_threads` is the number of runnable application threads; each
    /// one beyond the requester must be interrupted and quiesced (§4.4).
    ///
    /// # Panics
    ///
    /// Panics if a pass is already in flight.
    pub fn start_epoch(&mut self, machine: &mut Machine) -> u64 {
        self.start_epoch_with_busy_threads(machine, 1)
    }

    /// [`Revoker::start_epoch`] with an explicit busy-thread count.
    pub fn start_epoch_with_busy_threads(&mut self, machine: &mut Machine, busy_threads: usize) -> u64 {
        self.epoch.begin();
        if self.log_events {
            self.events.push(RevokerEvent::EpochBegin { epoch: self.epoch.value() });
        }
        self.epoch_fault_cycles = 0;
        self.epoch_concurrent_cycles = 0;
        // Union newly capability-dirty pages into the sticky tracked set.
        for p in machine.cap_dirty_pages() {
            self.tracked.insert(p);
        }
        let sync = self.sync_cost(busy_threads);
        match self.cfg.strategy {
            Strategy::PaintSync => {
                // One no-op "syscall"; the epoch ends immediately.
                self.note_epoch_end();
                2_000
            }
            Strategy::CheriVoke => {
                // Everything happens with the world stopped.
                let mut cycles = sync;
                cycles += self.scan_registers_and_hoards(machine);
                let pages: Vec<u64> = self.tracked.iter().copied().collect();
                for page in pages {
                    cycles += self.sweep_page_contents(machine, self.cfg.revoker_cores[0], page);
                }
                self.note_epoch_end();
                self.stats.stw_cycles += cycles;
                self.record_phase(PhaseKind::CheriVokeStw, cycles);
                cycles
            }
            Strategy::Cornucopia => {
                // No initial STW: snapshot the tracked pages and go
                // concurrent. Clear CD bits as pages are visited so
                // re-dirtying is observable.
                let work = self.shard(self.tracked.iter().copied());
                self.state = State::CornConcurrent { work };
                0
            }
            Strategy::Reloaded => {
                let mut cycles = sync;
                // Fast global enablement: flip only in-core generation bits.
                machine.flip_core_generations();
                cycles += 1_000; // IPI broadcast
                if self.cfg.pte_mode == PteUpdateMode::RewriteEachEpoch {
                    // Strawman: touch every PTE up front, with shootdowns.
                    let pages: Vec<u64> = machine.mapped_pages().collect();
                    for p in &pages {
                        machine.set_page_generation(*p, !machine.space_generation());
                        machine.set_page_generation(*p, machine.space_generation());
                    }
                    // Undo: leave them stale so the sweep still visits them.
                    for p in &pages {
                        machine.set_page_generation(*p, !machine.space_generation());
                    }
                    cycles += pages.len() as u64 * 150;
                }
                cycles += self.scan_registers_and_hoards(machine);
                // `stale_generation_pages` is already ascending and
                // duplicate-free; deal it straight into the shards.
                let work = self.shard(machine.stale_generation_pages());
                self.state = State::RelConcurrent { work };
                self.stats.stw_cycles += cycles;
                self.record_phase(PhaseKind::ReloadedStw, cycles);
                cycles
            }
            Strategy::CheriotFilter => {
                // No traps, no thread quiescence: the load filter already
                // protects the mutator. Scan registers/hoards (the
                // cycle-stealing engine does this too) and sweep in the
                // background so bitmap bits can eventually be recycled.
                let cycles = self.scan_registers_and_hoards(machine);
                let work = self.shard(self.tracked.iter().copied());
                self.state = State::RelConcurrent { work };
                self.stats.stw_cycles += cycles;
                cycles
            }
        }
    }

    /// Runs up to `budget` cycles of background revocation **per core** on
    /// the configured revoker core(s). Each core consumes its own worklist
    /// shard (stealing round-robin once it drains), charges its own cache
    /// and DRAM traffic, and accumulates its own cycle count; the returned
    /// `used` is the max across cores — the step's critical path.
    pub fn background_step(&mut self, machine: &mut Machine, budget: u64) -> StepOutcome {
        match std::mem::replace(&mut self.state, State::Idle) {
            State::Idle => StepOutcome::Idle,
            State::CornAwaitStw => {
                self.state = State::CornAwaitStw;
                StepOutcome::NeedsFinalStw { used: 0 }
            }
            State::CornConcurrent { mut work } => {
                let used = self.parallel_sweep(machine, &mut work, budget, true);
                if work.is_empty() {
                    self.state = State::CornAwaitStw;
                    StepOutcome::NeedsFinalStw { used }
                } else {
                    self.state = State::CornConcurrent { work };
                    StepOutcome::Working { used }
                }
            }
            State::RelConcurrent { mut work } => {
                let used = self.parallel_sweep(machine, &mut work, budget, false);
                if work.is_empty() {
                    self.finish_reloaded_epoch();
                    StepOutcome::Finished { used }
                } else {
                    self.state = State::RelConcurrent { work };
                    StepOutcome::Working { used }
                }
            }
        }
    }

    /// One budgeted slice of the parallel concurrent sweep. Pages are
    /// handed out round-robin, one per core per round, so the simulated
    /// cores advance in lockstep; a core that exhausts `budget` sits out
    /// the rest of the slice. Page visits commute (each sweep touches only
    /// its own page's tags; the bitmap is read-only here), so the
    /// revocation result is independent of the core count even though
    /// cycle and traffic attribution are not.
    fn parallel_sweep(
        &mut self,
        machine: &mut Machine,
        work: &mut ShardedWorklist,
        budget: u64,
        cornucopia: bool,
    ) -> u64 {
        let cores = self.cfg.revoker_cores.clone();
        let mut used = vec![0u64; cores.len()];
        'slice: loop {
            let mut progressed = false;
            for (shard, &core) in cores.iter().enumerate() {
                if used[shard] >= budget {
                    continue;
                }
                let Some(page) = work.pop_for(shard) else { break 'slice };
                used[shard] += if cornucopia {
                    // Visit: clear CD first so stores during/after the scan
                    // re-dirty the page for the STW re-sweep.
                    machine.clear_page_cap_dirty(page);
                    120 + self.sweep_page_contents(machine, core, page) // PTE write + shootdown
                } else {
                    self.visit_page_reloaded(machine, core, page)
                };
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        for (shard, &u) in used.iter().enumerate() {
            self.core_concurrent_cycles[shard] += u;
        }
        let critical_path = used.into_iter().max().unwrap_or(0);
        self.epoch_concurrent_cycles += critical_path;
        self.stats.concurrent_cycles += critical_path;
        critical_path
    }

    /// Deals a deterministic (ascending) page set into one shard per
    /// configured revoker core.
    /// Deals an ascending page sequence into the per-core worklist shards.
    fn shard(&self, pages: impl IntoIterator<Item = u64>) -> ShardedWorklist {
        ShardedWorklist::new(pages, self.cfg.revoker_cores.len())
    }

    /// Executes Cornucopia's final stop-the-world phase (re-sweep of pages
    /// re-dirtied during the concurrent phase, plus the register and hoard
    /// scan) and ends the epoch. Returns the pause in cycles.
    ///
    /// # Panics
    ///
    /// Panics unless [`Revoker::background_step`] returned
    /// [`StepOutcome::NeedsFinalStw`].
    pub fn finish_stw(&mut self, machine: &mut Machine, busy_threads: usize) -> u64 {
        assert!(matches!(self.state, State::CornAwaitStw), "finish_stw called out of phase");
        let mut cycles = self.sync_cost(busy_threads);
        cycles += self.scan_registers_and_hoards(machine);
        // Pages dirtied *for the first time* during the concurrent phase
        // must join the sweep too, not just re-dirtied ones.
        for p in machine.cap_dirty_pages() {
            self.tracked.insert(p);
        }
        // Re-dirtied pages have their CD bit set again.
        let redirtied: Vec<u64> =
            self.tracked.iter().copied().filter(|&p| machine.page_cap_dirty(p)).collect();
        let core = self.cfg.revoker_cores[0];
        for page in redirtied {
            machine.clear_page_cap_dirty(page);
            cycles += 120;
            cycles += self.sweep_page_contents(machine, core, page);
        }
        self.state = State::Idle;
        self.note_epoch_end();
        self.stats.stw_cycles += cycles;
        self.record_phase(PhaseKind::CornucopiaConcurrent, self.epoch_concurrent_cycles);
        self.record_phase(PhaseKind::CornucopiaStw, cycles);
        cycles
    }

    /// Handles a [`cheri_vm::VmFault::CapLoadGeneration`] fault taken by an
    /// application thread on `core` at `vaddr` (Reloaded's foreground
    /// self-healing path, §4.3). Sweeps the page, updates its PTE, and
    /// returns the cycles to charge to the faulting thread. The faulted
    /// load can then be retried.
    pub fn handle_load_fault(&mut self, machine: &mut Machine, core: CoreId, vaddr: u64) -> u64 {
        let page = vaddr / PAGE_SIZE * PAGE_SIZE;
        let mut cycles = self.cfg.fault_trap_cycles;
        // Re-check under the pmap lock: another thread may have already
        // revoked this page (§4.3).
        if machine.page_generation(page) == Some(machine.space_generation())
            && !matches!(self.state, State::RelConcurrent { ref work } if work.contains(page))
        {
            return cycles;
        }
        cycles += self.visit_page_reloaded(machine, core, page);
        let mut finished = false;
        if let State::RelConcurrent { work } = &mut self.state {
            // Cancel the page in whichever shard owns it (lazy removal).
            work.remove(page);
            finished = work.is_empty();
        }
        self.stats.load_faults += 1;
        self.stats.fault_cycles += cycles;
        self.epoch_fault_cycles += cycles;
        if self.log_events {
            self.events.push(RevokerEvent::LoadFaultHandled { vaddr, core, cycles });
        }
        if finished {
            self.finish_reloaded_epoch();
        }
        cycles
    }

    /// CHERIoT-style load filter (§6.3): applied to every capability load
    /// when [`Strategy::CheriotFilter`] is active. Returns the (possibly
    /// detagged) capability and the filter's cycle cost.
    pub fn filter_loaded(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        cap: Capability,
    ) -> (Capability, u64) {
        if self.cfg.strategy != Strategy::CheriotFilter || !cap.is_tagged() {
            return (cap, 0);
        }
        self.stats.filtered_loads += 1;
        // The probe is architectural and rides the load pipeline; its cost
        // is a tightly-coupled-memory lookup, not a cache miss.
        let (painted, _) = self.bitmap.probe_charged(machine, core, cap.base());
        if painted {
            self.stats.caps_revoked += 1;
            (cap.with_tag_cleared(), 1)
        } else {
            (cap, 1)
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn sync_cost(&self, busy_threads: usize) -> u64 {
        self.cfg.stw_sync_base_cycles
            + self.cfg.stw_sync_per_busy_thread * busy_threads.saturating_sub(1) as u64
    }

    fn finish_reloaded_epoch(&mut self) {
        self.state = State::Idle;
        self.note_epoch_end();
        if self.cfg.strategy == Strategy::Reloaded {
            self.record_phase(PhaseKind::ReloadedConcurrent, self.epoch_concurrent_cycles);
            self.record_phase(PhaseKind::ReloadedFaults, self.epoch_fault_cycles);
        }
    }

    /// Ends the in-flight epoch: bumps the counters and (when enabled)
    /// logs the completion event.
    fn note_epoch_end(&mut self) {
        self.epoch.end();
        self.stats.epochs += 1;
        if self.log_events {
            self.events.push(RevokerEvent::EpochEnd {
                epoch: self.epoch.value(),
                pages_swept: self.stats.pages_swept,
                caps_revoked: self.stats.caps_revoked,
            });
        }
    }

    fn record_phase(&mut self, kind: PhaseKind, cycles: u64) {
        self.phases.push(PhaseRecord { epoch_index: self.stats.epochs, kind, cycles });
    }

    /// Scans all thread register files and kernel hoards, revoking painted
    /// capabilities. Returns the cycle cost.
    fn scan_registers_and_hoards(&mut self, machine: &mut Machine) -> u64 {
        let mut cycles = 0;
        let bitmap = &self.bitmap;
        let mut checked = 0u64;
        let mut revoked = 0u64;
        for t in 0..machine.num_threads() {
            for cap in machine.regs_mut(t).iter_mut() {
                checked += 1;
                if cap.is_tagged() && bitmap.probe(cap.base()) {
                    *cap = cap.with_tag_cleared();
                    revoked += 1;
                }
            }
        }
        cycles += checked * 6;
        let (scanned, hrevoked) = self.hoards.scan(|c| bitmap.probe(c.base()));
        cycles += scanned * 6;
        self.stats.caps_checked += checked + scanned;
        self.stats.caps_revoked += revoked + hrevoked;
        cycles
    }

    /// Scans the contents of one page, revoking painted capabilities in
    /// place. Returns the cycle cost (traffic charged to `core`).
    fn sweep_page_contents(&mut self, machine: &mut Machine, core: CoreId, page: u64) -> u64 {
        // Morello-calibrated fixed visit cost: pmap locking, page
        // quiescing, and per-visit kernel accounting dominate the raw
        // 4 KiB read (§4.3; CheriBSD page visits measure ~3-5 us).
        let mut cycles = machine.charge_page_scan(core, page) + 12_000;
        self.stats.pages_swept += 1;
        // §4.3 read-only heuristic: scan without write intent; only a page
        // that actually needs a revocation is upgraded (full page fault).
        let mut writable = machine.page_user_writable(page);
        // Move the scratch buffer out so the visit loop can mutate both
        // `self` and `machine`; the snapshot semantics (and visit order)
        // are identical to collecting a fresh Vec.
        let mut caps = std::mem::take(&mut self.scratch);
        machine.peek_tagged_caps_into(page, &mut caps);
        self.stats.caps_checked += caps.len() as u64;
        for &(addr, cap) in &caps {
            // §7.3: a capability whose color no longer matches its target
            // memory is permanently useless and may be revoked on sight —
            // a purely architectural test, no bitmap consultation needed.
            if cap.color() != machine.granule_color(cap.base()) {
                if !writable {
                    cycles += machine.upgrade_page_writable(page);
                    writable = true;
                    self.stats.ro_pages_upgraded += 1;
                }
                cycles += machine.revoke_granule(core, addr) + 2;
                self.stats.caps_revoked += 1;
                continue;
            }
            let (painted, c) = self.bitmap.probe_charged(machine, core, cap.base());
            cycles += c + 4;
            if painted {
                if !writable {
                    cycles += machine.upgrade_page_writable(page);
                    writable = true;
                    self.stats.ro_pages_upgraded += 1;
                }
                cycles += machine.revoke_granule(core, addr);
                self.stats.caps_revoked += 1;
            }
        }
        self.scratch = caps;
        cycles
    }

    /// Reloaded page visit: content-scan pages that may hold capabilities;
    /// cheaply refresh the generation of clean pages. Idempotent.
    ///
    /// Unlike the Cornucopia/CHERIvoke sweep sets (sticky per §4.5), the
    /// Reloaded implementation *does* detect pages that have become
    /// capability-clean: a scan that leaves no tagged granule un-tracks
    /// the page (and clears its CD bit so a later capability store
    /// re-tracks it through the store barrier). This is safe under the
    /// load-barrier invariant — any capability stored after the scan was
    /// already revocation-checked — and is where Reloaded's bus-traffic
    /// advantage on churn-heavy workloads comes from (Figure 6).
    fn visit_page_reloaded(&mut self, machine: &mut Machine, core: CoreId, page: u64) -> u64 {
        let mut cycles = 0;
        if self.tracked.contains(&page) || machine.page_cap_dirty(page) {
            cycles += self.sweep_page_contents(machine, core, page);
            if !machine.mem().phys().page_has_tags(page) {
                self.tracked.remove(&page);
                machine.clear_page_cap_dirty(page);
                cycles += 120;
            }
        } else {
            // Capability-clean page: maintain its generation bit without a
            // content scan (§4.1 footnote 19), or park it in the
            // always-trap disposition (§7.6) at no recurring cost.
            self.stats.pages_visited_clean += 1;
            cycles += 200;
            if self.cfg.always_trap_clean {
                machine.set_always_trap(page, true);
            }
        }
        machine.set_page_generation(page, machine.space_generation());
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::Perms;
    use cheri_vm::MapFlags;

    const HEAP: u64 = 0x4000_0000;
    const HLEN: u64 = 0x4_0000; // 256 KiB

    fn setup(strategy: Strategy) -> (Machine, Revoker, Capability) {
        let mut m = Machine::new(2);
        m.map_range(HEAP, HLEN, MapFlags::user_rw()).unwrap();
        let rev = Revoker::new(RevokerConfig { strategy, ..RevokerConfig::default() }, HEAP, HLEN);
        let heap = Capability::new_root(HEAP, HLEN, Perms::rw());
        (m, rev, heap)
    }

    /// Plants a stale capability to `[HEAP+0x1000, +64)` in memory, a
    /// register, and a hoard; paints it; returns the object cap.
    #[allow(unused_variables)]
    fn plant(m: &mut Machine, rev: &mut Revoker, heap: &Capability) -> Capability {
        let obj = heap.set_bounds(HEAP + 0x1000, 64).unwrap();
        m.store_cap(0, &heap.set_addr(HEAP), obj).unwrap();
        m.regs_mut(0).set(5, obj);
        rev.hoards_mut().deposit(crate::hoards::HoardKind::Aio, obj);
        rev.paint(m, 0, HEAP + 0x1000, 64);
        obj
    }

    fn run_to_completion(m: &mut Machine, rev: &mut Revoker) {
        rev.start_epoch(m);
        let mut guard = 0;
        while rev.is_revoking() {
            match rev.background_step(m, 1_000_000) {
                StepOutcome::NeedsFinalStw { .. } => {
                    rev.finish_stw(m, 1);
                }
                StepOutcome::Idle => break,
                _ => {}
            }
            guard += 1;
            assert!(guard < 10_000, "revocation did not terminate");
        }
    }

    fn assert_expunged(m: &mut Machine, _rev: &Revoker, heap: &Capability) {
        let (mem_copy, _) = m.load_cap(0, &heap.set_addr(HEAP)).unwrap();
        assert!(!mem_copy.is_tagged(), "stale cap survived in memory");
        assert!(!m.regs(0).get(5).is_tagged(), "stale cap survived in a register");
    }

    #[test]
    fn cherivoke_expunges_everything_in_one_stw() {
        let (mut m, mut rev, heap) = setup(Strategy::CheriVoke);
        plant(&mut m, &mut rev, &heap);
        let pause = rev.start_epoch(&mut m);
        assert!(pause > 0);
        assert!(!rev.is_revoking(), "CHERIvoke completes synchronously");
        assert_expunged(&mut m, &rev, &heap);
        assert_eq!(rev.epoch(), 2);
    }

    #[test]
    fn cornucopia_expunges_after_concurrent_plus_stw() {
        let (mut m, mut rev, heap) = setup(Strategy::Cornucopia);
        plant(&mut m, &mut rev, &heap);
        run_to_completion(&mut m, &mut rev);
        assert_expunged(&mut m, &rev, &heap);
        let kinds: Vec<PhaseKind> = rev.phase_records().iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PhaseKind::CornucopiaConcurrent));
        assert!(kinds.contains(&PhaseKind::CornucopiaStw));
    }

    #[test]
    fn reloaded_expunges_with_background_only() {
        let (mut m, mut rev, heap) = setup(Strategy::Reloaded);
        plant(&mut m, &mut rev, &heap);
        run_to_completion(&mut m, &mut rev);
        assert_expunged(&mut m, &rev, &heap);
        assert_eq!(rev.stats().load_faults, 0, "no app loads, so no faults");
    }

    #[test]
    fn reloaded_register_scan_happens_at_entry() {
        let (mut m, mut rev, heap) = setup(Strategy::Reloaded);
        plant(&mut m, &mut rev, &heap);
        rev.start_epoch(&mut m);
        // Before any background work, registers and hoards are clean.
        assert!(!m.regs(0).get(5).is_tagged());
        // ...but memory still holds the (unreachable-via-load) stale cap.
        assert!(m.mem().phys().tag(HEAP));
    }

    #[test]
    fn reloaded_fault_heals_page_and_load_retries() {
        let (mut m, mut rev, heap) = setup(Strategy::Reloaded);
        let _obj = plant(&mut m, &mut rev, &heap);
        // A *live* cap on the same page as the stale one.
        let live = heap.set_bounds(HEAP + 0x2000, 64).unwrap();
        m.store_cap(0, &heap.set_addr(HEAP + 0x10), live).unwrap();
        rev.start_epoch(&mut m);
        // App loads the live cap: the barrier faults, the handler heals.
        let auth = heap.set_addr(HEAP + 0x10);
        let err = m.load_cap(0, &auth).unwrap_err();
        let cheri_vm::VmFault::CapLoadGeneration { vaddr } = err else {
            panic!("expected load-generation fault, got {err:?}");
        };
        let cycles = rev.handle_load_fault(&mut m, 0, vaddr);
        assert!(cycles > 0);
        // Retry succeeds and the live cap is intact...
        let (got, _) = m.load_cap(0, &auth).unwrap();
        assert!(got.is_tagged());
        assert_eq!(got.base(), HEAP + 0x2000);
        // ...while the stale cap on the same page is already gone.
        assert!(!m.mem().phys().tag(HEAP));
        assert_eq!(rev.stats().load_faults, 1);
    }

    #[test]
    fn paint_sync_provides_no_safety() {
        let (mut m, mut rev, heap) = setup(Strategy::PaintSync);
        plant(&mut m, &mut rev, &heap);
        let pause = rev.start_epoch(&mut m);
        assert!(pause < 10_000);
        assert!(!rev.is_revoking());
        // The stale capability survives: Paint+sync is overhead-only.
        let (mem_copy, _) = m.load_cap(0, &heap.set_addr(HEAP)).unwrap();
        assert!(mem_copy.is_tagged());
        assert!(!Strategy::PaintSync.provides_safety());
    }

    #[test]
    fn cheriot_filter_blocks_loads_without_epochs() {
        let (mut m, mut rev, heap) = setup(Strategy::CheriotFilter);
        let _obj = plant(&mut m, &mut rev, &heap);
        // No epoch has run at all; the filter alone protects loads.
        let (raw, _) = m.load_cap(0, &heap.set_addr(HEAP)).unwrap();
        assert!(raw.is_tagged(), "raw memory still tagged");
        let (filtered, _) = rev.filter_loaded(&mut m, 0, raw);
        assert!(!filtered.is_tagged(), "filter must detag painted caps");
        assert_eq!(rev.stats().filtered_loads, 1);
    }

    #[test]
    fn cornucopia_restw_covers_redirtied_pages() {
        let (mut m, mut rev, heap) = setup(Strategy::Cornucopia);
        let _obj = plant(&mut m, &mut rev, &heap);
        rev.start_epoch(&mut m);
        // Drain the concurrent phase.
        while !matches!(rev.background_step(&mut m, 1_000_000), StepOutcome::NeedsFinalStw { .. }) {}
        // Application now stores a *stale* cap to a cleaned page (it still
        // holds one in a register-like variable: simulate via direct store
        // of the painted cap).
        let stale = heap.set_bounds(HEAP + 0x1000, 64).unwrap();
        m.store_cap(0, &heap.set_addr(HEAP + 0x3000), stale).unwrap();
        let pause = rev.finish_stw(&mut m, 1);
        assert!(pause > 0);
        // The re-dirtied page was re-swept: the stale copy is gone.
        assert!(!m.mem().phys().tag(HEAP + 0x3000));
    }

    #[test]
    fn reloaded_stw_is_orders_of_magnitude_shorter_than_cherivoke() {
        // Populate many capability-bearing pages, then compare pauses.
        let mut pauses = Vec::new();
        for strategy in [Strategy::CheriVoke, Strategy::Reloaded] {
            let (mut m, mut rev, heap) = setup(strategy);
            for page in 0..32u64 {
                for slot in 0..8u64 {
                    let a = HEAP + page * 4096 + slot * 128;
                    let c = heap.set_bounds(a, 64).unwrap();
                    m.store_cap(0, &heap.set_addr(a), c).unwrap();
                }
            }
            rev.paint(&mut m, 0, HEAP + 0x1000, 64);
            let pause = rev.start_epoch(&mut m);
            pauses.push(pause);
            while rev.is_revoking() {
                if matches!(rev.background_step(&mut m, 1_000_000), StepOutcome::NeedsFinalStw { .. }) {
                    rev.finish_stw(&mut m, 1);
                }
            }
        }
        assert!(
            pauses[0] > pauses[1] * 4,
            "CHERIvoke pause {} should dwarf Reloaded pause {}",
            pauses[0],
            pauses[1]
        );
    }

    #[test]
    fn cornucopia_drain_reports_needs_stw_in_same_step() {
        let (mut m, mut rev, heap) = setup(Strategy::Cornucopia);
        plant(&mut m, &mut rev, &heap);
        rev.start_epoch(&mut m);
        // One pending page, ample budget: the step that drains it must
        // say so, carrying the cycles it consumed — no extra poll.
        match rev.background_step(&mut m, 1_000_000) {
            StepOutcome::NeedsFinalStw { used } => assert!(used > 0),
            other => panic!("expected same-step NeedsFinalStw, got {other:?}"),
        }
        // Re-polling while awaiting the STW consumes nothing.
        assert_eq!(
            rev.background_step(&mut m, 1_000_000),
            StepOutcome::NeedsFinalStw { used: 0 }
        );
        rev.finish_stw(&mut m, 1);
        assert!(!rev.is_revoking());
    }

    #[test]
    fn parallel_sweep_attributes_traffic_to_each_core() {
        let mut m = Machine::new(4);
        m.map_range(HEAP, HLEN, MapFlags::user_rw()).unwrap();
        let heap = Capability::new_root(HEAP, HLEN, Perms::rw());
        let cfg = RevokerConfig {
            strategy: Strategy::Reloaded,
            revoker_cores: vec![1, 2, 3],
            ..RevokerConfig::default()
        };
        let mut rev = Revoker::new(cfg, HEAP, HLEN);
        // Plenty of cap-bearing pages so every core sweeps several.
        for page in 0..24u64 {
            let a = HEAP + page * 4096;
            let c = heap.set_bounds(a, 64).unwrap();
            m.store_cap(0, &heap.set_addr(a + 16), c).unwrap();
        }
        rev.paint(&mut m, 0, HEAP + 0x1000, 64);
        rev.start_epoch(&mut m);
        while matches!(rev.background_step(&mut m, 1_000_000), StepOutcome::Working { .. }) {}
        assert_eq!(rev.cores(), &[1, 2, 3]);
        for &core in rev.cores() {
            assert!(
                m.mem().traffic(core).dram_transactions > 0,
                "core {core} swept pages but shows no DRAM traffic"
            );
        }
        for (i, &cycles) in rev.per_core_concurrent_cycles().iter().enumerate() {
            assert!(cycles > 0, "shard {i} accumulated no sweep cycles");
        }
        // The critical path is the max shard, not the sum or the average.
        let max = *rev.per_core_concurrent_cycles().iter().max().unwrap();
        assert_eq!(rev.stats().concurrent_cycles, max);
    }

    #[test]
    fn epoch_counter_follows_protocol() {
        let (mut m, mut rev, heap) = setup(Strategy::Reloaded);
        plant(&mut m, &mut rev, &heap);
        assert_eq!(rev.epoch(), 0);
        rev.start_epoch(&mut m);
        assert_eq!(rev.epoch(), 1);
        assert!(rev.is_revoking());
        while rev.is_revoking() {
            rev.background_step(&mut m, 1_000_000);
        }
        assert_eq!(rev.epoch(), 2);
    }

    #[test]
    fn clean_pages_get_cheap_visits() {
        let (mut m, mut rev, heap) = setup(Strategy::Reloaded);
        // One page with caps, the rest only data.
        let obj = heap.set_bounds(HEAP + 0x1000, 64).unwrap();
        m.store_cap(0, &heap.set_addr(HEAP + 0x1000), obj).unwrap();
        m.write_data(0, &heap.set_addr(HEAP + 0x8000), 4096).unwrap();
        rev.paint(&mut m, 0, HEAP + 0x1000, 64);
        run_to_completion(&mut m, &mut rev);
        let s = rev.stats();
        assert!(s.pages_visited_clean > 0, "data pages should be cheap visits");
        assert_eq!(s.pages_swept, 1, "only the cap-bearing page is content-scanned");
    }
}

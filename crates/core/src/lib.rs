//! Sweeping CHERI capability revocation — the paper's contribution.
//!
//! This crate is the in-kernel half of CHERI heap temporal safety (paper
//! §2.2, §3, §4): given a [`RevocationBitmap`] painted by user-space
//! allocators, a revocation **epoch** guarantees that every capability whose
//! base lies in memory marked *before* the epoch began has been expunged
//! from the process — heap memory, thread register files, and kernel
//! hoards — by the epoch's end.
//!
//! Four strategies are provided (all drop-in behind [`Revoker`]):
//!
//! | Strategy | Phases | Barrier used |
//! |---|---|---|
//! | [`Strategy::CheriVoke`] | one stop-the-world sweep | none (snapshot) |
//! | [`Strategy::Cornucopia`] | concurrent sweep + STW re-sweep of re-dirtied pages | per-page capability **store** barrier (§2.2.4) |
//! | [`Strategy::Reloaded`] | brief STW (flip generations, scan registers/hoards) + concurrent sweep with on-demand faults | per-page capability **load** barrier (§3.2, §4.1) |
//! | [`Strategy::PaintSync`] | none — quarantine bookkeeping only, **no temporal safety** | n/a |
//!
//! plus [`Strategy::CheriotFilter`], the CHERIoT-style non-trapping load
//! filter (§6.3), as an ablation.
//!
//! The revoker is a state machine driven by a simulator: the caller invokes
//! [`Revoker::start_epoch`] (synchronous STW work), then interleaves
//! application execution with [`Revoker::background_step`] and routes
//! [`cheri_vm::VmFault::CapLoadGeneration`] faults to
//! [`Revoker::handle_load_fault`]. All cycle costs are returned to the
//! caller for time accounting; all memory traffic is charged through the
//! [`cheri_vm::Machine`]'s cache model.
//!
//! # Example
//!
//! ```
//! use cheri_cap::{Capability, Perms};
//! use cheri_vm::{Machine, MapFlags};
//! use cornucopia::{Revoker, RevokerConfig, Strategy};
//!
//! let mut m = Machine::new(2);
//! m.map_range(0x4000_0000, 0x10000, MapFlags::user_rw()).unwrap();
//! let heap = Capability::new_root(0x4000_0000, 0x10000, Perms::rw());
//! let obj = heap.set_bounds(0x4000_1000, 64).unwrap();
//! // A stale pointer to `obj` sits in memory...
//! m.store_cap(0, &heap.set_addr(0x4000_0000), obj).unwrap();
//!
//! let mut rev = Revoker::new(
//!     RevokerConfig { strategy: Strategy::Reloaded, ..RevokerConfig::default() },
//!     0x4000_0000,
//!     0x10000,
//! );
//! // free(obj): the allocator paints its granules.
//! rev.paint(&mut m, 0, 0x4000_1000, 64);
//! // Run a full epoch to completion.
//! rev.start_epoch(&mut m);
//! while rev.is_revoking() {
//!     rev.background_step(&mut m, 100_000);
//! }
//! // The stale copy is gone.
//! let (stale, _) = m.load_cap(0, &heap.set_addr(0x4000_0000)).unwrap();
//! assert!(!stale.is_tagged());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod epoch;
mod hoards;
mod revoker;
mod worklist;

pub use bitmap::{RevocationBitmap, BITMAP_SUMMARY_VA_BASE, BITMAP_VA_BASE};
pub use epoch::EpochClock;
pub use hoards::{HoardKind, KernelHoards};
pub use revoker::{
    PhaseKind, PhaseRecord, PteUpdateMode, RevStats, Revoker, RevokerConfig, RevokerEvent,
    StepOutcome, Strategy,
};

//! Property test: the parallel concurrent sweep is a pure optimization.
//!
//! A full revocation epoch must produce **bit-identical results** no
//! matter how many revoker cores share the sweep: the same `caps_revoked`
//! count, the same surviving tagged capabilities in memory, and the same
//! surviving register contents. Only the cycle and traffic *attribution*
//! may differ (which core paid for which page). This is the determinism
//! guarantee the sharded worklist is designed around — page visits
//! commute, every pending page is visited exactly once, and the shard
//! deal is a function of the sorted page set alone.

use cheri_cap::{Capability, Perms, CAP_SIZE};
use cheri_mem::PAGE_SIZE;
use cheri_vm::{Machine, MapFlags};
use cornucopia::{HoardKind, Revoker, RevokerConfig, StepOutcome, Strategy};
use simtest::check::{vec_of, CaseResult, Gen, GenExt};
use simtest::{oneof, sim_assert_eq};

const HEAP: u64 = 0x4000_0000;
const PAGES: u64 = 32;
const OBJS: u64 = 64; // one per half page
/// Machine size: app core 0 plus up to 4 revoker cores (1..=4).
const MACHINE_CORES: usize = 5;

#[derive(Debug, Clone)]
enum Setup {
    /// Store a capability for object `o` into slot `s`.
    Plant { o: u64, s: u64 },
    /// Stash object `o`'s capability in a register.
    Stash { o: u64, r: usize },
    /// Hoard object `o`'s capability in the kernel.
    Hoard { o: u64 },
    /// Paint object `o` (free it).
    Paint { o: u64 },
}

fn setup_strategy() -> impl Gen<Value = Setup> {
    oneof![
        4 => ((0..OBJS), (0..OBJS * 4)).gmap(|(o, s)| Setup::Plant { o, s }),
        2 => ((0..OBJS), (0usize..24)).gmap(|(o, r)| Setup::Stash { o, r }),
        1 => (0..OBJS).gmap(|o| Setup::Hoard { o }),
        3 => (0..OBJS).gmap(|o| Setup::Paint { o }),
    ]
}

fn obj_base(o: u64) -> u64 {
    HEAP + o * (PAGE_SIZE / 2)
}

fn slot_addr(s: u64) -> u64 {
    HEAP + PAGES * PAGE_SIZE / 2 + s * CAP_SIZE
}

/// Applies a setup plan and runs one full epoch with `cores` revoker
/// cores, returning a result signature: (caps_revoked, surviving tagged
/// caps in memory, surviving tagged register slots).
fn run_epoch(
    strategy: Strategy,
    cores: usize,
    setup: &[Setup],
    budget: u64,
) -> (u64, Vec<(u64, u64)>, Vec<(usize, u64)>) {
    let mut m = Machine::new(MACHINE_CORES);
    m.map_range(HEAP, PAGES * PAGE_SIZE, MapFlags::user_rw()).unwrap();
    let heap = Capability::new_root(HEAP, PAGES * PAGE_SIZE, Perms::rw());
    let mut rev = Revoker::new(
        RevokerConfig {
            strategy,
            revoker_cores: (1..=cores).collect(),
            ..RevokerConfig::default()
        },
        HEAP,
        PAGES * PAGE_SIZE,
    );
    for act in setup {
        match *act {
            Setup::Plant { o, s } => {
                let cap = heap.set_bounds(obj_base(o), 64).unwrap();
                m.store_cap(0, &heap.set_addr(slot_addr(s)), cap).unwrap();
            }
            Setup::Stash { o, r } => {
                let cap = heap.set_bounds(obj_base(o), 64).unwrap();
                m.regs_mut(0).set(r, cap);
            }
            Setup::Hoard { o } => {
                let cap = heap.set_bounds(obj_base(o), 64).unwrap();
                rev.hoards_mut().deposit(HoardKind::Aio, cap);
            }
            Setup::Paint { o } => {
                rev.paint(&mut m, 0, obj_base(o), 64);
            }
        }
    }
    rev.start_epoch(&mut m);
    let mut guard = 0;
    while rev.is_revoking() {
        if matches!(rev.background_step(&mut m, budget), StepOutcome::NeedsFinalStw { .. }) {
            rev.finish_stw(&mut m, 1);
        }
        guard += 1;
        assert!(guard < 100_000, "epoch did not terminate");
    }
    let mut mem_tags = Vec::new();
    for page in 0..PAGES {
        for (addr, cap) in m.peek_tagged_caps(HEAP + page * PAGE_SIZE) {
            mem_tags.push((addr, cap.base()));
        }
    }
    let mut reg_tags = Vec::new();
    for (i, cap) in m.regs(0).iter().enumerate() {
        if cap.is_tagged() {
            reg_tags.push((i, cap.base()));
        }
    }
    (rev.stats().caps_revoked, mem_tags, reg_tags)
}

fn check_core_counts(strategy: Strategy, setup: Vec<Setup>, budget: u64) -> CaseResult {
    let reference = run_epoch(strategy, 1, &setup, budget);
    for cores in [2usize, 4] {
        let got = run_epoch(strategy, cores, &setup, budget);
        sim_assert_eq!(
            got.0,
            reference.0,
            "caps_revoked diverged with {cores} cores ({strategy:?})"
        );
        sim_assert_eq!(
            got.1,
            reference.1,
            "surviving memory tags diverged with {cores} cores ({strategy:?})"
        );
        sim_assert_eq!(
            got.2,
            reference.2,
            "surviving register tags diverged with {cores} cores ({strategy:?})"
        );
    }
    Ok(())
}

simtest::props! {
    #![config(simtest::Config { cases: 48, ..Default::default() })]

    fn reloaded_identical_across_core_counts(
        setup in vec_of(setup_strategy(), 1..100),
        budget in 5_000u64..400_000,
    ) {
        check_core_counts(Strategy::Reloaded, setup, budget)?;
    }

    fn cornucopia_identical_across_core_counts(
        setup in vec_of(setup_strategy(), 1..100),
        budget in 5_000u64..400_000,
    ) {
        check_core_counts(Strategy::Cornucopia, setup, budget)?;
    }
}

/// Deterministic smoke version of the acceptance criterion: with every
/// page holding capabilities and plenty painted, 4 cores must cut the
/// concurrent-phase critical path at least 2× versus 1 core while the
/// results stay bit-identical.
#[test]
fn four_cores_halve_critical_path_with_identical_results() {
    let run = |cores: usize| {
        let mut m = Machine::new(MACHINE_CORES);
        m.map_range(HEAP, PAGES * PAGE_SIZE, MapFlags::user_rw()).unwrap();
        let heap = Capability::new_root(HEAP, PAGES * PAGE_SIZE, Perms::rw());
        let mut rev = Revoker::new(
            RevokerConfig {
                strategy: Strategy::Reloaded,
                revoker_cores: (1..=cores).collect(),
                ..RevokerConfig::default()
            },
            HEAP,
            PAGES * PAGE_SIZE,
        );
        // Capabilities on every page, so every page needs a content scan
        // and the sweep work actually distributes across the shards.
        for page in 0..PAGES {
            for slot in 0..8u64 {
                let o = (page * 8 + slot) % OBJS;
                let cap = heap.set_bounds(obj_base(o), 64).unwrap();
                let at = HEAP + page * PAGE_SIZE + slot * 256;
                m.store_cap(0, &heap.set_addr(at), cap).unwrap();
            }
        }
        for o in 0..OBJS {
            if o % 2 == 0 {
                rev.paint(&mut m, 0, obj_base(o), 64);
            }
        }
        rev.start_epoch(&mut m);
        while rev.is_revoking() {
            rev.background_step(&mut m, 1_000_000);
        }
        let mut tags = Vec::new();
        for page in 0..PAGES {
            for (addr, cap) in m.peek_tagged_caps(HEAP + page * PAGE_SIZE) {
                tags.push((addr, cap.base()));
            }
        }
        (rev.stats().concurrent_cycles, rev.stats().caps_revoked, tags)
    };
    let (path1, revoked1, tags1) = run(1);
    let (path4, revoked4, tags4) = run(4);
    assert_eq!(revoked1, revoked4, "caps_revoked must not depend on core count");
    assert_eq!(tags1, tags4, "surviving tags must not depend on core count");
    assert!(
        path4 * 2 <= path1,
        "4-core critical path {path4} not ≥2× shorter than 1-core {path1}"
    );
}

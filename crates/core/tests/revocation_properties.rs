//! Property tests of the revocation subsystem's central guarantee, under
//! arbitrary interleavings of application activity and revoker progress.
//!
//! The model: capabilities are planted in memory, registers, and hoards;
//! regions are painted; epochs start, run in arbitrary-size background
//! slices, and finish. After any epoch completes, **no tagged capability
//! whose base was painted before that epoch began may exist anywhere** —
//! for every strategy that claims safety. Loads taken mid-epoch through
//! the barrier must never observe a doomed capability either.

use cheri_cap::{Capability, Perms, CAP_SIZE};
use cheri_mem::PAGE_SIZE;
use cheri_vm::{Machine, MapFlags, VmFault};
use cornucopia::{HoardKind, Revoker, RevokerConfig, StepOutcome, Strategy as RevStrategy};
use simtest::check::{vec_of, CaseFailure, CaseResult, Gen, GenExt, Just};
use simtest::{oneof, sim_assert, sim_assert_eq};
use std::collections::HashSet;

const HEAP: u64 = 0x4000_0000;
const PAGES: u64 = 24;
const OBJS: u64 = 48; // one object per half page

#[derive(Debug, Clone)]
enum Act {
    /// Store a capability for object `o` into slot `s` of the heap.
    Plant { o: u64, s: u64 },
    /// Stash object `o`'s capability in a register.
    Stash { o: u64, r: usize },
    /// Hoard object `o`'s capability in the kernel.
    Hoard { o: u64 },
    /// Paint object `o` (free it).
    Paint { o: u64 },
    /// Begin an epoch (if idle).
    Begin,
    /// Run background revocation with the given budget.
    Step { budget: u64 },
    /// Finish Cornucopia's STW if requested.
    FinishStw,
    /// Application load from slot `s`, healing barrier faults.
    Load { s: u64 },
}

fn act_strategy() -> impl Gen<Value = Act> {
    oneof![
        3 => ((0..OBJS), (0..OBJS * 4)).gmap(|(o, s)| Act::Plant { o, s }),
        2 => ((0..OBJS), (0usize..32)).gmap(|(o, r)| Act::Stash { o, r }),
        1 => (0..OBJS).gmap(|o| Act::Hoard { o }),
        2 => (0..OBJS).gmap(|o| Act::Paint { o }),
        2 => Just(Act::Begin),
        3 => (10_000u64..500_000).gmap(|budget| Act::Step { budget }),
        2 => Just(Act::FinishStw),
        3 => (0..OBJS * 4).gmap(|s| Act::Load { s }),
    ]
}

fn obj_base(o: u64) -> u64 {
    HEAP + o * (PAGE_SIZE / 2)
}

fn slot_addr(s: u64) -> u64 {
    // Slots live in a dedicated region above the objects.
    HEAP + PAGES * PAGE_SIZE / 2 + s * CAP_SIZE
}

fn run_model(strategy: RevStrategy, acts: Vec<Act>) -> CaseResult {
    let mut m = Machine::new(2);
    m.map_range(HEAP, PAGES * PAGE_SIZE, MapFlags::user_rw()).unwrap();
    let heap = Capability::new_root(HEAP, PAGES * PAGE_SIZE, Perms::rw());
    let mut rev = Revoker::new(
        RevokerConfig { strategy, ..RevokerConfig::default() },
        HEAP,
        PAGES * PAGE_SIZE,
    );
    // Shadow state.
    let mut painted_now: HashSet<u64> = HashSet::new(); // bases painted
    let mut doomed: HashSet<u64> = HashSet::new(); // painted before current epoch
    let mut epoch_open = false;

    let check_all_gone = |m: &mut Machine, rev: &mut Revoker, doomed: &HashSet<u64>| {
        // Memory slots.
        for s in 0..OBJS * 4 {
            let a = slot_addr(s);
            if m.mem().phys().tag(a) {
                let cap = m.mem().phys().load_cap(a);
                sim_assert!(
                    !doomed.contains(&cap.base()),
                    "doomed cap (base {:#x}) survived in memory slot {s}",
                    cap.base()
                );
            }
        }
        // Registers.
        for t in 0..m.num_threads() {
            for cap in m.regs(t).iter() {
                if cap.is_tagged() {
                    sim_assert!(
                        !doomed.contains(&cap.base()),
                        "doomed cap survived in a register of thread {t}"
                    );
                }
            }
        }
        // Hoards.
        let (_, revoked) = rev.hoards_mut().scan(|c| doomed.contains(&c.base()));
        sim_assert_eq!(revoked, 0, "doomed cap survived in a kernel hoard");
        Ok(())
    };

    for act in acts {
        match act {
            // A real program can only produce a capability for an object
            // it has not freed (post-free copies are exactly what the
            // epoch expunges), so plants are restricted to live objects.
            Act::Plant { o, s } => {
                if painted_now.contains(&obj_base(o)) {
                    continue;
                }
                let cap = heap.set_bounds(obj_base(o), 64).unwrap();
                m.store_cap(0, &heap.set_addr(slot_addr(s)), cap).unwrap();
            }
            Act::Stash { o, r } => {
                if painted_now.contains(&obj_base(o)) {
                    continue;
                }
                let cap = heap.set_bounds(obj_base(o), 64).unwrap();
                m.regs_mut(0).set(r, cap);
            }
            Act::Hoard { o } => {
                if painted_now.contains(&obj_base(o)) {
                    continue;
                }
                let cap = heap.set_bounds(obj_base(o), 64).unwrap();
                rev.hoards_mut().deposit(HoardKind::Aio, cap);
            }
            Act::Paint { o } => {
                rev.paint(&mut m, 0, obj_base(o), 64);
                painted_now.insert(obj_base(o));
            }
            Act::Begin => {
                if !rev.is_revoking() {
                    doomed = painted_now.clone();
                    rev.start_epoch(&mut m);
                    if rev.is_revoking() {
                        epoch_open = true;
                    } else {
                        // CHERIvoke completes synchronously.
                        check_all_gone(&mut m, &mut rev, &doomed)?;
                        epoch_open = false;
                    }
                }
            }
            Act::Step { budget } => match rev.background_step(&mut m, budget) {
                StepOutcome::Finished { .. } => {
                    if epoch_open {
                        check_all_gone(&mut m, &mut rev, &doomed)?;
                        epoch_open = false;
                    }
                }
                _ => {}
            },
            Act::FinishStw => {
                if matches!(rev.background_step(&mut m, 0), StepOutcome::NeedsFinalStw { .. }) {
                    rev.finish_stw(&mut m, 1);
                    if epoch_open {
                        check_all_gone(&mut m, &mut rev, &doomed)?;
                        epoch_open = false;
                    }
                }
            }
            Act::Load { s } => {
                let auth = heap.set_addr(slot_addr(s));
                let cap = loop {
                    match m.load_cap(0, &auth) {
                        Ok((c, _)) => break c,
                        Err(VmFault::CapLoadGeneration { vaddr }) => {
                            rev.handle_load_fault(&mut m, 0, vaddr);
                        }
                        Err(e) => return Err(CaseFailure::fail(format!("unexpected fault {e}"))),
                    }
                };
                // Reloaded's invariant: a load can never surface a cap
                // doomed as of the current epoch once revocation began.
                if strategy == RevStrategy::Reloaded && rev.is_revoking() && cap.is_tagged() {
                    sim_assert!(
                        !doomed.contains(&cap.base()),
                        "mid-epoch load divulged a doomed capability"
                    );
                }
                if !rev.is_revoking() && epoch_open {
                    // handle_load_fault may have completed the epoch.
                    check_all_gone(&mut m, &mut rev, &doomed)?;
                    epoch_open = false;
                }
            }
        }
    }
    // Drain any in-flight epoch and check once more.
    if rev.is_revoking() {
        loop {
            match rev.background_step(&mut m, 1_000_000) {
                StepOutcome::NeedsFinalStw { .. } => {
                    rev.finish_stw(&mut m, 1);
                    break;
                }
                StepOutcome::Finished { .. } | StepOutcome::Idle => break,
                StepOutcome::Working { .. } => {}
            }
        }
        if epoch_open {
            check_all_gone(&mut m, &mut rev, &doomed)?;
        }
    }
    Ok(())
}

/// The shrunk counterexample proptest found historically (formerly the
/// `revocation_properties.proptest-regressions` seed): an object painted,
/// an epoch begun, and a capability for that same object planted and
/// loaded back mid-epoch. The model must treat the post-paint plant as
/// unreachable-by-a-correct-program and the epoch guarantee must hold for
/// every strategy. Kept as an explicit test so the historical case is
/// never silently dropped.
#[test]
fn regression_paint_begin_plant_load_interleaving() {
    let acts = vec![
        Act::Paint { o: 38 },
        Act::Begin,
        Act::Plant { o: 38, s: 0 },
        Act::Load { s: 0 },
    ];
    for strategy in [RevStrategy::Reloaded, RevStrategy::Cornucopia, RevStrategy::CheriVoke] {
        run_model(strategy, acts.clone()).unwrap_or_else(|e| {
            panic!("historical Paint/Begin/Plant/Load counterexample regressed under {strategy:?}: {e:?}")
        });
    }
}

simtest::props! {
    #![config(simtest::Config { cases: 64, ..Default::default() })]

    fn epoch_guarantee_reloaded(acts in vec_of(act_strategy(), 1..120)) {
        run_model(RevStrategy::Reloaded, acts)?;
    }

    fn epoch_guarantee_cornucopia(acts in vec_of(act_strategy(), 1..120)) {
        run_model(RevStrategy::Cornucopia, acts)?;
    }

    fn epoch_guarantee_cherivoke(acts in vec_of(act_strategy(), 1..120)) {
        run_model(RevStrategy::CheriVoke, acts)?;
    }
}

//! Tests for the revoker's variant configurations: the CHERIoT-style
//! filter's background engine, multi-threaded background revocation
//! (§7.1), the always-trap-clean-pages disposition (§7.6), and the PTE
//! rewrite strawman (§4.1).

use cheri_cap::{Capability, Perms};
use cheri_vm::{Machine, MapFlags, VmFault};
use cornucopia::{PteUpdateMode, Revoker, RevokerConfig, StepOutcome, Strategy as RevStrategy};

const HEAP: u64 = 0x4000_0000;
const HLEN: u64 = 0x10_0000; // 1 MiB

fn setup(cfg: RevokerConfig) -> (Machine, Revoker, Capability) {
    let mut m = Machine::new(4);
    m.map_range(HEAP, HLEN, MapFlags::user_rw()).unwrap();
    let heap = Capability::new_root(HEAP, HLEN, Perms::rw());
    (m, Revoker::new(cfg, HEAP, HLEN), heap)
}

fn populate(m: &mut Machine, heap: &Capability, pages: u64) {
    for p in 0..pages {
        for s in 0..4 {
            let a = HEAP + p * 4096 + s * 512;
            let c = heap.set_bounds(a, 64).unwrap();
            m.store_cap(3, &heap.set_addr(a), c).unwrap();
        }
    }
}

fn drain(m: &mut Machine, rev: &mut Revoker) -> u64 {
    let mut steps = 0;
    while rev.is_revoking() {
        match rev.background_step(m, 500_000) {
            StepOutcome::NeedsFinalStw { .. } => {
                rev.finish_stw(m, 1);
            }
            StepOutcome::Idle => break,
            _ => {}
        }
        steps += 1;
        assert!(steps < 100_000);
    }
    steps
}

#[test]
fn cheriot_filter_background_engine_recycles_bitmap() {
    let cfg = RevokerConfig { strategy: RevStrategy::CheriotFilter, ..RevokerConfig::default() };
    let (mut m, mut rev, heap) = setup(cfg);
    populate(&mut m, &heap, 32);
    rev.paint(&mut m, 3, HEAP + 0x2000, 128);
    // The filter protects immediately; the background engine still sweeps
    // so the bitmap bits can be recycled.
    rev.start_epoch(&mut m);
    assert!(rev.is_revoking());
    drain(&mut m, &mut rev);
    assert!(!m.mem().phys().tag(HEAP + 0x2000), "engine must clear stale tags");
    assert_eq!(rev.epoch() % 2, 0);
}

#[test]
fn multithreaded_revoker_finishes_in_fewer_steps() {
    let mut step_counts = Vec::new();
    for cores in [vec![1], vec![1, 2]] {
        let cfg = RevokerConfig {
            strategy: RevStrategy::Reloaded,
            revoker_cores: cores,
            ..RevokerConfig::default()
        };
        let (mut m, mut rev, heap) = setup(cfg);
        populate(&mut m, &heap, 128);
        rev.paint(&mut m, 3, HEAP + 0x1000, 64);
        rev.start_epoch(&mut m);
        step_counts.push(drain(&mut m, &mut rev));
        // Safety is unaffected.
        assert!(!m.mem().phys().tag(HEAP + 0x1000));
    }
    assert!(
        step_counts[1] * 3 <= step_counts[0] * 2,
        "two revoker threads ({}) should beat one ({}) clearly",
        step_counts[1],
        step_counts[0]
    );
}

#[test]
fn always_trap_clean_pages_skip_generation_maintenance() {
    let cfg = RevokerConfig {
        strategy: RevStrategy::Reloaded,
        always_trap_clean: true,
        ..RevokerConfig::default()
    };
    let (mut m, mut rev, heap) = setup(cfg);
    // One capability page; the rest are data-only (clean).
    m.store_cap(3, &heap.set_addr(HEAP), heap.set_bounds(HEAP, 64).unwrap()).unwrap();
    m.write_data(3, &heap.set_addr(HEAP + 0x8000), 8 * 4096).unwrap();
    rev.paint(&mut m, 3, HEAP + 0x100, 64);
    rev.start_epoch(&mut m);
    drain(&mut m, &mut rev);
    // Clean pages were parked in the §7.6 disposition...
    assert!(rev.stats().pages_visited_clean > 0);
    // ...so a *data* load still works, but the first capability load from
    // such a page traps regardless of generation state.
    assert!(m.read_data(3, &heap.set_addr(HEAP + 0x8000), 64).is_ok());
    let c = heap.set_bounds(HEAP + 0x9000, 64).unwrap();
    // A store makes the page capability-bearing again; the disposition
    // still forces the next load to trap for revoker attention.
    m.store_cap(3, &heap.set_addr(HEAP + 0x9000), c).unwrap();
    match m.load_cap(3, &heap.set_addr(HEAP + 0x9000)) {
        Err(VmFault::CapLoadGeneration { vaddr }) => {
            // The fault handler resolves it like any barrier fault.
            m.set_always_trap(vaddr, false);
            assert!(m.load_cap(3, &heap.set_addr(HEAP + 0x9000)).is_ok());
        }
        other => panic!("always-trap page must trap on cap load, got {other:?}"),
    }
}

#[test]
fn pte_rewrite_mode_is_functionally_equivalent() {
    for mode in [PteUpdateMode::Generation, PteUpdateMode::RewriteEachEpoch] {
        let cfg = RevokerConfig {
            strategy: RevStrategy::Reloaded,
            pte_mode: mode,
            ..RevokerConfig::default()
        };
        let (mut m, mut rev, heap) = setup(cfg);
        populate(&mut m, &heap, 16);
        rev.paint(&mut m, 3, HEAP + 0x1000, 64);
        rev.start_epoch(&mut m);
        drain(&mut m, &mut rev);
        assert!(!m.mem().phys().tag(HEAP + 0x1000), "{mode:?} must still revoke");
        // Live caps elsewhere survive.
        assert!(m.mem().phys().tag(HEAP));
    }
}

#[test]
fn read_only_pages_upgrade_only_when_revocation_requires_it() {
    let cfg = RevokerConfig { strategy: RevStrategy::CheriVoke, ..RevokerConfig::default() };
    let (mut m, mut rev, heap) = setup(cfg);
    // Two pages full of caps, then remapped read-only (relro-style).
    for page in 0..2u64 {
        let a = HEAP + page * 4096;
        let c = heap.set_bounds(a + 256, 64).unwrap();
        m.store_cap(3, &heap.set_addr(a), c).unwrap();
    }
    m.map_range(HEAP, 2 * 4096, MapFlags::user_ro()).unwrap();
    // Remapping preserves the capability-dirty bit, so the revoker still
    // visits both pages.
    assert!(!m.page_user_writable(HEAP));
    assert!(m.page_cap_dirty(HEAP), "remap must not lose CD tracking");
    rev.paint(&mut m, 3, HEAP + 256, 64);
    rev.start_epoch(&mut m);
    drain(&mut m, &mut rev);
    let s = rev.stats();
    // Page 0 needed a revocation: upgraded. Page 1 did not: untouched.
    assert_eq!(s.ro_pages_upgraded, 1, "exactly one RO page needed the write path");
    assert!(!m.mem().phys().tag(HEAP), "painted cap on the RO page was revoked");
    assert!(m.mem().phys().tag(HEAP + 4096), "unpainted RO page kept its cap");
    assert!(!m.page_user_writable(HEAP + 4096), "no-write page stays read-only");
}

#[test]
fn phase_records_accumulate_across_epochs() {
    let cfg = RevokerConfig { strategy: RevStrategy::Cornucopia, ..RevokerConfig::default() };
    let (mut m, mut rev, heap) = setup(cfg);
    populate(&mut m, &heap, 8);
    for i in 0..3 {
        rev.paint(&mut m, 3, HEAP + 0x1000 + i * 512, 64);
        rev.start_epoch(&mut m);
        drain(&mut m, &mut rev);
    }
    let records = rev.phase_records();
    let stw = records.iter().filter(|r| r.kind == cornucopia::PhaseKind::CornucopiaStw).count();
    let conc =
        records.iter().filter(|r| r.kind == cornucopia::PhaseKind::CornucopiaConcurrent).count();
    assert_eq!(stw, 3);
    assert_eq!(conc, 3);
    assert_eq!(rev.stats().epochs, 3);
}

//! Property test: the two-level, word-masked bitmap is observationally
//! equivalent to the historical bit-at-a-time implementation.
//!
//! The reference model below is a literal transcription of the old
//! `set_range` loop (step `CAP_SIZE` from `base` while below `base+len`,
//! flooring each address to a granule, silently skipping out-of-arena
//! addresses). Random paint/unpaint sequences — including unaligned
//! bases, ranges straddling the arena boundaries, and full-arena
//! paints — must leave every probe and the painted-granule count
//! identical between the model and the real bitmap.

use cheri_cap::CAP_SIZE;
use cheri_vm::Machine;
use cornucopia::RevocationBitmap;
use simtest::check::{vec_of, CaseResult, Gen, GenExt};
use simtest::{oneof, sim_assert_eq};

const HEAP_BASE: u64 = 0x4000_0000;
const HEAP_LEN: u64 = 0x2_0000; // 128 KiB = 8192 granules
const GRANULES: usize = (HEAP_LEN / CAP_SIZE) as usize;

/// The pre-summary implementation, bit by bit.
#[derive(Debug, Clone)]
struct ModelBitmap {
    bits: Vec<bool>,
}

impl ModelBitmap {
    fn new() -> Self {
        ModelBitmap { bits: vec![false; GRANULES] }
    }

    fn set_range(&mut self, base: u64, len: u64, value: bool) {
        let mut addr = base;
        let end = base.saturating_add(len);
        while addr < end {
            if addr >= HEAP_BASE && addr < HEAP_BASE + HEAP_LEN {
                self.bits[((addr - HEAP_BASE) / CAP_SIZE) as usize] = value;
            }
            addr += CAP_SIZE;
        }
    }

    fn probe(&self, addr: u64) -> bool {
        if addr < HEAP_BASE || addr >= HEAP_BASE + HEAP_LEN {
            return false;
        }
        self.bits[((addr - HEAP_BASE) / CAP_SIZE) as usize]
    }

    fn painted(&self) -> u64 {
        self.bits.iter().filter(|&&b| b).count() as u64
    }
}

#[derive(Debug, Clone)]
enum Act {
    Paint { base: u64, len: u64 },
    Unpaint { base: u64, len: u64 },
}

/// Bases span below, inside, and above the arena; lengths go up to the
/// full arena plus overshoot; offsets are byte-granular so unaligned
/// bases are exercised too.
fn range_strategy() -> impl Gen<Value = (u64, u64)> {
    (
        (0u64..HEAP_LEN + 0x2000),
        (0u64..HEAP_LEN + 0x400),
    )
        .gmap(|(off, len)| (HEAP_BASE - 0x1000 + off, len))
}

fn act_strategy() -> impl Gen<Value = Act> {
    oneof![
        3 => range_strategy().gmap(|(base, len)| Act::Paint { base, len }),
        2 => range_strategy().gmap(|(base, len)| Act::Unpaint { base, len }),
        // Full-arena paints and unpaints, the word-masked fast path's
        // best case, must agree bit-for-bit as well.
        1 => (0u64..2).gmap(|v| if v == 0 {
            Act::Paint { base: HEAP_BASE, len: HEAP_LEN }
        } else {
            Act::Unpaint { base: HEAP_BASE, len: HEAP_LEN }
        }),
    ]
}

fn run_model(acts: Vec<Act>) -> CaseResult {
    let mut m = Machine::new(1);
    let mut real = RevocationBitmap::new(HEAP_BASE, HEAP_LEN);
    let mut model = ModelBitmap::new();
    for act in &acts {
        match *act {
            Act::Paint { base, len } => {
                real.paint(&mut m, 0, base, len);
                model.set_range(base, len, true);
            }
            Act::Unpaint { base, len } => {
                real.unpaint(&mut m, 0, base, len);
                model.set_range(base, len, false);
            }
        }
        sim_assert_eq!(
            real.painted_granules(),
            model.painted(),
            "painted-granule count diverged after {act:?}"
        );
    }
    // Every granule, both arena edges, and out-of-arena addresses.
    for g in 0..GRANULES as u64 {
        let addr = HEAP_BASE + g * CAP_SIZE;
        sim_assert_eq!(real.probe(addr), model.probe(addr), "probe diverged at granule {g}");
        // Unaligned probes floor to the same granule in both.
        sim_assert_eq!(real.probe(addr + 7), model.probe(addr + 7));
    }
    for addr in [HEAP_BASE - 16, HEAP_BASE - 1, HEAP_BASE + HEAP_LEN, HEAP_BASE + HEAP_LEN + 16] {
        sim_assert_eq!(real.probe(addr), false, "out-of-arena probe at {addr:#x}");
        let (hit, _) = real.probe_charged(&mut m, 0, addr);
        sim_assert_eq!(hit, false);
    }
    // Charged probes agree with pure probes everywhere.
    for g in (0..GRANULES as u64).step_by(37) {
        let addr = HEAP_BASE + g * CAP_SIZE;
        let (hit, cycles) = real.probe_charged(&mut m, 0, addr);
        sim_assert_eq!(hit, real.probe(addr));
        simtest::sim_assert!(cycles > 0, "in-arena charged probe must cost cycles");
    }
    Ok(())
}

simtest::props! {
    #![config(simtest::Config { cases: 96, ..Default::default() })]

    fn summary_bitmap_matches_bit_at_a_time_model(acts in vec_of(act_strategy(), 1..40)) {
        run_model(acts)?;
    }
}

/// The boundary cases the generator might under-sample, pinned exactly.
#[test]
fn arena_boundary_paints_match_model() {
    let cases = [
        (HEAP_BASE - 64, 128),                 // straddles the start
        (HEAP_BASE + HEAP_LEN - 64, 128),      // straddles the end
        (HEAP_BASE - 64, 64),                  // ends exactly at the start
        (HEAP_BASE + HEAP_LEN, 64),            // begins exactly at the end
        (HEAP_BASE, HEAP_LEN),                 // exactly the arena
        (HEAP_BASE - 0x1000, HEAP_LEN + 0x2000), // superset of the arena
        (HEAP_BASE + 8, 16),                   // unaligned base
        (HEAP_BASE + 24, 1),                   // sub-granule length
        (HEAP_BASE, 0),                        // empty
    ];
    for (base, len) in cases {
        run_model(vec![
            Act::Paint { base, len },
            Act::Unpaint { base: base + 16, len: len / 2 },
        ])
        .unwrap_or_else(|e| panic!("boundary case base={base:#x} len={len}: {e:?}"));
    }
}

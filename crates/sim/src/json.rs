//! Minimal deterministic JSON, hand-rolled so the workspace stays
//! dependency-free.
//!
//! The report exporter only needs integers, strings, booleans, nulls,
//! arrays, and objects with a *caller-chosen key order* — [`Json::render`]
//! emits exactly the tree it is given, compactly, with no whitespace and
//! no float formatting, so equal trees always produce byte-identical
//! text. The parser accepts the same subset (plus insignificant
//! whitespace) and exists so tests can validate exported reports without
//! an external library.

use std::fmt;

/// A JSON value. Objects preserve insertion order; numbers are integers
/// (the simulator is cycle-accurate — nothing it reports is fractional).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (wide enough for any `u64` counter).
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as i128)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as i128)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs — shorthand for the
    /// checkpoint and metadata lines the bench orchestrator writes, which
    /// would otherwise repeat `("k".into(), v)` for every field.
    #[must_use]
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders compact deterministic JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                use fmt::Write;
                write!(out, "{n}").expect("writing to a String cannot fail");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up `key` in an object; `None` for missing keys and
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<i128> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses JSON text (the integer subset this module writes).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i128>().map(Json::Num).map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_compact_and_ordered() {
        let v = Json::Obj(vec![
            ("b".into(), Json::from(2u64)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true), Json::from("x")])),
        ]);
        assert_eq!(v.render(), r#"{"b":2,"a":[null,true,"x"]}"#);
    }

    #[test]
    fn roundtrip() {
        let v = Json::Obj(vec![
            ("n".into(), Json::Num(-42)),
            ("big".into(), Json::from(u64::MAX)),
            ("s".into(), Json::from("quote \" slash \\ tab \t")),
            ("nested".into(), Json::Obj(vec![("arr".into(), Json::Arr(vec![Json::from(1u64)]))])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"s\" : \"\\u0041\\n\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "A\n");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1.5", "1e3", "tru", "\"open", "{}x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"k":7,"s":"hi","b":true}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_num(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(v.as_num().is_none());
        assert!(v.as_bool().is_none());
    }

    #[test]
    fn obj_shorthand_preserves_order() {
        let v = Json::obj([("z", Json::from(1u64)), ("a", Json::from("x"))]);
        assert_eq!(v.render(), r#"{"z":1,"a":"x"}"#);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}

//! Run statistics and percentile utilities.

use crate::json::Json;

/// Simulated clock frequency: 2.5 GHz, matching the Morello SoC.
pub const CYCLES_PER_SEC: u64 = 2_500_000_000;

/// Cycles per millisecond.
pub const CYCLES_PER_MS: u64 = CYCLES_PER_SEC / 1000;

/// Everything a single run produces; the raw material for every figure
/// and table in the evaluation.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Total simulated wall-clock cycles.
    pub wall_cycles: u64,
    /// CPU cycles consumed by the application thread(s) (includes fault
    /// handling and STW pauses spent spinning).
    pub app_cpu_cycles: u64,
    /// CPU cycles consumed by the background revoker.
    pub revoker_cpu_cycles: u64,
    /// DRAM transactions attributed to application cores.
    pub app_dram: u64,
    /// DRAM transactions attributed to the revoker core(s), summed.
    pub revoker_dram: u64,
    /// DRAM transactions per revoker core, aligned with `revoker_cores`
    /// (the parallel sweep charges each shard's traffic to its own core).
    pub revoker_dram_per_core: Vec<u64>,
    /// The revoker core ids, in shard order (key for
    /// `revoker_dram_per_core`).
    pub revoker_cores: Vec<usize>,
    /// Pages content-scanned by the revoker, all phases.
    pub pages_swept: u64,
    /// Peak resident set in bytes.
    pub peak_rss: u64,
    /// Every stop-the-world pause observed (cycles).
    pub pauses: Vec<u64>,
    /// Cycles the application spent blocked waiting for an in-flight pass
    /// (quarantine hard-full; §5.3's pathology).
    pub blocked_cycles: u64,
    /// Per-transaction latencies in cycles (TxBegin..TxEnd), in
    /// completion order.
    pub tx_latencies: Vec<u64>,
    /// Cumulative fault-handling cycles (application side).
    pub fault_cycles: u64,
    /// Load-barrier faults taken.
    pub faults: u64,
    /// Completed revocation epochs.
    pub revocations: u64,
    /// Mean allocated heap sampled at each revocation request (bytes).
    pub mean_alloc_at_revocation: u64,
    /// Total bytes passed through free() (Table 2 "Sum Freed").
    pub total_freed_bytes: u64,
    /// Allocation operations performed.
    pub allocs: u64,
    /// Free operations performed.
    pub frees: u64,
    /// Revocation phase durations (Figure 9's raw data).
    pub phases: Vec<cornucopia::PhaseRecord>,
    /// Times allocation blocked on an in-flight pass.
    pub blocked_allocs: u64,
    /// TLB misses that required a page-table walk (all cores).
    pub tlb_misses: u64,
    /// TLB invalidations broadcast to other cores.
    pub tlb_shootdowns: u64,
    /// PTE writes performed (the quantity §4.1's design halves).
    pub pte_writes: u64,
}

impl RunStats {
    /// Total DRAM transactions (all cores).
    #[must_use]
    pub fn total_dram(&self) -> u64 {
        self.app_dram + self.revoker_dram
    }

    /// Total CPU cycles (all cores).
    #[must_use]
    pub fn total_cpu(&self) -> u64 {
        self.app_cpu_cycles + self.revoker_cpu_cycles
    }

    /// Wall time in milliseconds.
    #[must_use]
    pub fn wall_ms(&self) -> f64 {
        self.wall_cycles as f64 / CYCLES_PER_MS as f64
    }

    /// Latency summary of the recorded transactions.
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::from_cycles(&self.tx_latencies)
    }

    /// Full-fidelity serialization to a [`Json`] tree: every field,
    /// including the raw transaction latencies and phase records that
    /// [`RunReport::to_json_value`](crate::RunReport::to_json_value)
    /// summarizes. [`RunStats::from_json_value`] inverts it exactly, so
    /// interrupted sweeps can checkpoint completed runs and resume without
    /// losing figure inputs.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        let arr = |v: &[u64]| Json::Arr(v.iter().map(|&x| x.into()).collect());
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("epoch".into(), p.epoch_index.into()),
                        ("kind".into(), p.kind.label().into()),
                        ("cycles".into(), p.cycles.into()),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("wall_cycles".into(), self.wall_cycles.into()),
            ("app_cpu_cycles".into(), self.app_cpu_cycles.into()),
            ("revoker_cpu_cycles".into(), self.revoker_cpu_cycles.into()),
            ("app_dram".into(), self.app_dram.into()),
            ("revoker_dram".into(), self.revoker_dram.into()),
            ("revoker_dram_per_core".into(), arr(&self.revoker_dram_per_core)),
            (
                "revoker_cores".into(),
                Json::Arr(self.revoker_cores.iter().map(|&c| c.into()).collect()),
            ),
            ("pages_swept".into(), self.pages_swept.into()),
            ("peak_rss".into(), self.peak_rss.into()),
            ("pauses".into(), arr(&self.pauses)),
            ("blocked_cycles".into(), self.blocked_cycles.into()),
            ("tx_latencies".into(), arr(&self.tx_latencies)),
            ("fault_cycles".into(), self.fault_cycles.into()),
            ("faults".into(), self.faults.into()),
            ("revocations".into(), self.revocations.into()),
            ("mean_alloc_at_revocation".into(), self.mean_alloc_at_revocation.into()),
            ("total_freed_bytes".into(), self.total_freed_bytes.into()),
            ("allocs".into(), self.allocs.into()),
            ("frees".into(), self.frees.into()),
            ("phases".into(), phases),
            ("blocked_allocs".into(), self.blocked_allocs.into()),
            ("tlb_misses".into(), self.tlb_misses.into()),
            ("tlb_shootdowns".into(), self.tlb_shootdowns.into()),
            ("pte_writes".into(), self.pte_writes.into()),
        ])
    }

    /// Reconstructs statistics serialized by [`RunStats::to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field; a
    /// checkpoint written by a different code version fails here rather
    /// than resurrecting half-parsed statistics.
    pub fn from_json_value(v: &Json) -> Result<RunStats, String> {
        fn num(v: &Json, key: &str) -> Result<u64, String> {
            let n =
                v.get(key).and_then(Json::as_num).ok_or_else(|| format!("missing field {key}"))?;
            u64::try_from(n).map_err(|_| format!("field {key} out of range"))
        }
        fn nums(v: &Json, key: &str) -> Result<Vec<u64>, String> {
            let arr =
                v.get(key).and_then(Json::as_arr).ok_or_else(|| format!("missing array {key}"))?;
            arr.iter()
                .map(|x| {
                    x.as_num()
                        .and_then(|n| u64::try_from(n).ok())
                        .ok_or_else(|| format!("non-numeric entry in {key}"))
                })
                .collect()
        }
        let wall_cycles = num(v, "wall_cycles")?;
        let phases = v
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("missing array phases")?
            .iter()
            .map(|p| {
                let label =
                    p.get("kind").and_then(Json::as_str).ok_or("phase record missing kind")?;
                let kind = cornucopia::PhaseKind::from_label(label)
                    .ok_or_else(|| format!("unknown phase kind {label:?}"))?;
                Ok(cornucopia::PhaseRecord {
                    epoch_index: num(p, "epoch")?,
                    kind,
                    cycles: num(p, "cycles")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunStats {
            wall_cycles,
            app_cpu_cycles: num(v, "app_cpu_cycles")?,
            revoker_cpu_cycles: num(v, "revoker_cpu_cycles")?,
            app_dram: num(v, "app_dram")?,
            revoker_dram: num(v, "revoker_dram")?,
            revoker_dram_per_core: nums(v, "revoker_dram_per_core")?,
            revoker_cores: nums(v, "revoker_cores")?.into_iter().map(|c| c as usize).collect(),
            pages_swept: num(v, "pages_swept")?,
            peak_rss: num(v, "peak_rss")?,
            pauses: nums(v, "pauses")?,
            blocked_cycles: num(v, "blocked_cycles")?,
            tx_latencies: nums(v, "tx_latencies")?,
            fault_cycles: num(v, "fault_cycles")?,
            faults: num(v, "faults")?,
            revocations: num(v, "revocations")?,
            mean_alloc_at_revocation: num(v, "mean_alloc_at_revocation")?,
            total_freed_bytes: num(v, "total_freed_bytes")?,
            allocs: num(v, "allocs")?,
            frees: num(v, "frees")?,
            phases,
            blocked_allocs: num(v, "blocked_allocs")?,
            tlb_misses: num(v, "tlb_misses")?,
            tlb_shootdowns: num(v, "tlb_shootdowns")?,
            pte_writes: num(v, "pte_writes")?,
        })
    }
}

/// Standard latency percentiles (cycles), as gRPC QPS reports (Figure 8).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: u64,
}

impl LatencySummary {
    /// Summarizes a set of latency samples (not necessarily sorted).
    #[must_use]
    pub fn from_cycles(samples: &[u64]) -> Self {
        let d = Dist::from_samples(samples);
        if d.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            count: d.len(),
            p50: d.percentile(50.0),
            p90: d.percentile(90.0),
            p95: d.percentile(95.0),
            p99: d.percentile(99.0),
            p999: d.percentile(99.9),
            max: d.max().expect("nonempty"),
            mean: d.mean(),
        }
    }
}

/// A sorted sample distribution: the one percentile/extremum utility every
/// consumer (latency summaries, boxplots, figure tables) goes through, so
/// the nearest-rank convention lives in exactly one place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dist {
    sorted: Vec<u64>,
}

impl Dist {
    /// Builds a distribution from unsorted samples.
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Dist { sorted }
    }

    /// Builds a distribution from a vector, reusing its storage.
    #[must_use]
    pub fn from_vec(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        Dist { sorted: samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The smallest sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.sorted.first().copied()
    }

    /// The largest sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        if self.sorted.is_empty() {
            return 0;
        }
        (self.sorted.iter().map(|&x| x as u128).sum::<u128>() / self.sorted.len() as u128) as u64
    }

    /// Nearest-rank percentile; `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `p` is out of range.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        percentile(&self.sorted, p)
    }

    /// The sorted samples.
    #[must_use]
    pub fn as_sorted(&self) -> &[u64] {
        &self.sorted
    }
}

/// Nearest-rank percentile of an ascending-sorted slice. `p` in `[0,100]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is out of range.
#[must_use]
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if p == 0.0 {
        return sorted[0];
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

// (BoxStats is exported from the crate root; Figure 9's harness uses it.)

/// Five-number summary for boxplots (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: u64,
    /// First quartile.
    pub q1: u64,
    /// Median.
    pub median: u64,
    /// Third quartile.
    pub q3: u64,
    /// Maximum.
    pub max: u64,
}

impl BoxStats {
    /// Computes the five-number summary of `samples` (unsorted OK).
    /// Returns `None` when empty.
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Option<Self> {
        let d = Dist::from_samples(samples);
        Some(BoxStats {
            min: d.min()?,
            q1: d.percentile(25.0),
            median: d.percentile(50.0),
            q3: d.percentile(75.0),
            max: d.max().expect("nonempty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 99.9), 100);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[42], 99.9), 42);
    }

    #[test]
    fn summary_orders_percentiles() {
        let samples: Vec<u64> = (0..1000).map(|i| i * i % 7919).collect();
        let s = LatencySummary::from_cycles(&samples);
        assert!(s.p50 <= s.p90);
        assert!(s.p90 <= s.p95);
        assert!(s.p95 <= s.p99);
        assert!(s.p99 <= s.p999);
        assert!(s.p999 <= s.max);
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(LatencySummary::from_cycles(&[]), LatencySummary::default());
    }

    #[test]
    fn dist_consolidates_percentile_helpers() {
        let d = Dist::from_samples(&[9, 1, 5, 3, 7]);
        assert_eq!((d.min(), d.max(), d.len()), (Some(1), Some(9), 5));
        assert_eq!(d.mean(), 5);
        assert_eq!(d.percentile(50.0), 5);
        assert_eq!(d.as_sorted(), &[1, 3, 5, 7, 9]);
        assert_eq!(Dist::from_vec(vec![2, 1]).as_sorted(), &[1, 2]);
        let empty = Dist::from_samples(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.mean(), 0);
        assert_eq!(empty.min(), None);
    }

    #[test]
    fn dist_agrees_with_summary_and_boxstats() {
        let samples: Vec<u64> = (0..500).map(|i| i * 37 % 1009).collect();
        let d = Dist::from_samples(&samples);
        let sum = LatencySummary::from_cycles(&samples);
        assert_eq!(sum.p50, d.percentile(50.0));
        assert_eq!(sum.p999, d.percentile(99.9));
        assert_eq!(sum.max, d.max().unwrap());
        let b = BoxStats::from_samples(&samples).unwrap();
        assert_eq!(b.median, d.percentile(50.0));
        assert_eq!(b.q3, d.percentile(75.0));
    }

    #[test]
    fn stats_json_roundtrip_is_exact() {
        let stats = RunStats {
            wall_cycles: 123_456_789,
            app_cpu_cycles: 10,
            revoker_cpu_cycles: 20,
            app_dram: 30,
            revoker_dram: 40,
            revoker_dram_per_core: vec![25, 15],
            revoker_cores: vec![1, 3],
            pages_swept: 50,
            peak_rss: 60,
            pauses: vec![7, 8, 9],
            blocked_cycles: 70,
            tx_latencies: vec![100, 200, 300],
            fault_cycles: 80,
            faults: 90,
            revocations: 3,
            mean_alloc_at_revocation: 4096,
            total_freed_bytes: 1 << 20,
            allocs: 1000,
            frees: 900,
            phases: vec![
                cornucopia::PhaseRecord {
                    epoch_index: 1,
                    kind: cornucopia::PhaseKind::ReloadedStw,
                    cycles: 11,
                },
                cornucopia::PhaseRecord {
                    epoch_index: 1,
                    kind: cornucopia::PhaseKind::ReloadedConcurrent,
                    cycles: 22,
                },
            ],
            blocked_allocs: 2,
            tlb_misses: 5,
            tlb_shootdowns: 6,
            pte_writes: 7,
        };
        let rendered = stats.to_json_value().render();
        let parsed = Json::parse(&rendered).expect("serialized stats must parse");
        let back = RunStats::from_json_value(&parsed).expect("roundtrip must succeed");
        assert_eq!(back, stats);
        // Defaults roundtrip too (empty vectors, zero counters).
        let d = RunStats::default();
        let back =
            RunStats::from_json_value(&Json::parse(&d.to_json_value().render()).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn stats_from_json_rejects_malformed_documents() {
        assert!(RunStats::from_json_value(&Json::parse("{}").unwrap())
            .unwrap_err()
            .contains("wall_cycles"));
        let mut v = RunStats::default().to_json_value();
        if let Json::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "phases" {
                    *val = Json::Arr(vec![Json::Obj(vec![
                        ("epoch".into(), 1u64.into()),
                        ("kind".into(), "not a phase".into()),
                        ("cycles".into(), 2u64.into()),
                    ])]);
                }
            }
        }
        assert!(RunStats::from_json_value(&v).unwrap_err().contains("unknown phase kind"));
    }

    #[test]
    fn boxstats_five_numbers() {
        let b = BoxStats::from_samples(&[5, 1, 3, 2, 4]).unwrap();
        assert_eq!((b.min, b.median, b.max), (1, 3, 5));
        assert!(b.q1 <= b.median && b.median <= b.q3);
        assert!(BoxStats::from_samples(&[]).is_none());
    }
}

//! Discrete-event simulation of the paper's evaluation platform.
//!
//! The paper evaluates on a 4-core, 2.5 GHz Morello board with the
//! application pinned to core 3 and the background revoker to core 2
//! (§5.1). This crate reproduces that setup in simulated time:
//!
//! * [`System`] owns the [`cheri_vm::Machine`], the
//!   [`cornucopia::Revoker`], and the [`cheri_alloc::Mrs`] heap, and
//!   executes a stream of application [`Op`]s;
//! * application work advances the **wall clock**; while a revocation pass
//!   is in flight the background revoker consumes the same wall interval
//!   on its own core (or steals time from the application cores when no
//!   spare core exists, §5.3);
//! * stop-the-world pauses, load-barrier faults, allocation blocking, and
//!   per-transaction latencies are all recorded for the evaluation's
//!   figures;
//! * DRAM traffic comes from the machine's cache model, CPU time from the
//!   per-core cycle ledgers, and peak RSS from the physical memory's
//!   high-water mark.
//!
//! Everything is deterministic: the same op stream produces the same
//! [`RunStats`].
//!
//! # Example
//!
//! ```
//! use morello_sim::{Condition, Op, SimConfig, System};
//!
//! let mut ops = vec![Op::TxBegin { id: 0 }];
//! for i in 0..100 {
//!     ops.push(Op::Alloc { obj: i, size: 128 });
//!     ops.push(Op::WriteData { obj: i, len: 128 });
//!     ops.push(Op::Free { obj: i });
//! }
//! ops.push(Op::TxEnd { id: 0 });
//!
//! let cfg = SimConfig { condition: Condition::reloaded(), ..SimConfig::default() };
//! let stats = System::new(cfg).run(ops).unwrap();
//! assert!(stats.wall_cycles > 0);
//! assert_eq!(stats.tx_latencies.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ops;
mod stats;
mod system;
pub mod trace;

pub use ops::{ObjId, Op};
pub use stats::{percentile, BoxStats, LatencySummary, RunStats, CYCLES_PER_MS, CYCLES_PER_SEC};
pub use system::{Condition, SimConfig, SimError, System};

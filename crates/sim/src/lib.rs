//! Discrete-event simulation of the paper's evaluation platform.
//!
//! The paper evaluates on a 4-core, 2.5 GHz Morello board with the
//! application pinned to core 3 and the background revoker to core 2
//! (§5.1). This crate reproduces that setup in simulated time:
//!
//! * [`System`] owns the [`cheri_vm::Machine`], the
//!   [`cornucopia::Revoker`], and the [`cheri_alloc::Mrs`] heap, and
//!   executes a stream of application [`Op`]s;
//! * application work advances the **wall clock**; while a revocation pass
//!   is in flight the background revoker consumes the same wall interval
//!   on its own core (or steals time from the application cores when no
//!   spare core exists, §5.3);
//! * stop-the-world pauses, load-barrier faults, allocation blocking, and
//!   per-transaction latencies are all recorded for the evaluation's
//!   figures;
//! * DRAM traffic comes from the machine's cache model, CPU time from the
//!   per-core cycle ledgers, and peak RSS from the physical memory's
//!   high-water mark;
//! * the [`telemetry`] layer can additionally journal typed events, span
//!   every revocation phase, and sample a counter time-series — all off
//!   by default and free when off.
//!
//! Everything is deterministic: the same op stream produces the same
//! [`RunStats`], and with telemetry on, the same byte-identical
//! [`RunReport::to_json`] document.
//!
//! # Example
//!
//! ```
//! use morello_sim::{Condition, Op, SimConfig, System};
//!
//! let mut ops = vec![Op::TxBegin { id: 0 }];
//! for i in 0..100 {
//!     ops.push(Op::Alloc { obj: i, size: 128 });
//!     ops.push(Op::WriteData { obj: i, len: 128 });
//!     ops.push(Op::Free { obj: i });
//! }
//! ops.push(Op::TxEnd { id: 0 });
//!
//! let cfg = SimConfig::builder().condition(Condition::reloaded()).build().unwrap();
//! let report = System::new(cfg).run(ops).unwrap();
//! assert!(report.wall_cycles > 0); // derefs to RunStats
//! assert_eq!(report.tx_latencies.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod json;
mod ops;
mod report;
mod stats;
mod system;
pub mod telemetry;
pub mod trace;

pub use config::{Condition, ConfigError, SimConfig, SimConfigBuilder, TelemetryConfig};
pub use json::{Json, JsonError};
pub use ops::{ObjId, Op, OpSource, OP_BATCH};
pub use report::{RunReport, REPORT_VERSION};
pub use stats::{percentile, BoxStats, Dist, LatencySummary, RunStats, CYCLES_PER_MS, CYCLES_PER_SEC};
pub use system::{SimError, System};
pub use telemetry::{
    NullSink, Recorder, Sample, Span, SpanKind, StaleChaseOutcome, TelemetryData, TelemetryEvent,
    TelemetrySink, TimedEvent,
};

//! The application operation vocabulary.
//!
//! Workloads compile to streams of these operations. Object identity is a
//! slot index into a **root table** — a large, permanently-live array of
//! capabilities in the simulated heap. Keeping the roots *in simulated
//! memory* (rather than in host-side bookkeeping) is what makes the
//! revokers honest: every pointer the application can reach is either in a
//! register file, a kernel hoard, or sweepable memory.

/// Index of an object's slot in the root table.
pub type ObjId = u64;

/// One application operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Op {
    /// `malloc(size)`; the returned capability is stored into the object's
    /// root-table slot (a capability store).
    Alloc {
        /// Destination root slot.
        obj: ObjId,
        /// Requested bytes.
        size: u64,
    },
    /// Loads the capability from the root slot (through the load barrier),
    /// passes it to `free`, and nulls the slot.
    Free {
        /// Root slot to free.
        obj: ObjId,
    },
    /// Loads the object's capability into a register (a capability load —
    /// the op that takes Reloaded load-barrier faults).
    LoadObj {
        /// Root slot to load.
        obj: ObjId,
    },
    /// Loads the object's capability, then reads `len` bytes of its data.
    ReadData {
        /// Root slot.
        obj: ObjId,
        /// Bytes to read (clamped to the object).
        len: u64,
    },
    /// Loads the object's capability, then writes `len` bytes of data.
    WriteData {
        /// Root slot.
        obj: ObjId,
        /// Bytes to write (clamped to the object).
        len: u64,
    },
    /// Stores a pointer to `to` inside object `from` at capability slot
    /// `slot` (pointer-graph construction; drives capability-dirty pages).
    LinkPtr {
        /// Object receiving the pointer.
        from: ObjId,
        /// 16-byte slot index within `from`.
        slot: u64,
        /// Object pointed to.
        to: ObjId,
    },
    /// Loads the pointer stored in object `from` at `slot` (pointer
    /// chasing; a capability load from object memory).
    ChasePtr {
        /// Object holding the pointer.
        from: ObjId,
        /// 16-byte slot index within `from`.
        slot: u64,
    },
    /// Pure computation: burns CPU and wall time.
    Compute {
        /// Cycles of work.
        cycles: u64,
    },
    /// Idle wall time (e.g. waiting for a client): wall advances, the app
    /// core is free, and background revocation can hide here (§5.2).
    ThinkIdle {
        /// Idle cycles.
        cycles: u64,
    },
    /// Deposits the object's capability into a kernel hoard (models
    /// `kqueue`/`aio` registration; scanned at every epoch, §4.4).
    SyscallHoard {
        /// Root slot whose capability the kernel will hoard.
        obj: ObjId,
    },
    /// `mmap(len)`: maps an anonymous reservation (paper §6.2) and stores
    /// its capability into the object's root-table slot.
    Mmap {
        /// Destination root slot.
        obj: ObjId,
        /// Requested bytes.
        len: u64,
    },
    /// Fully unmaps the reservation in the object's slot; its address
    /// space is quarantined until a revocation pass.
    Munmap {
        /// Root slot holding the mapping.
        obj: ObjId,
    },
    /// Begins a latency-measured transaction.
    TxBegin {
        /// Transaction id (for schedule pairing).
        id: u64,
    },
    /// Ends the transaction started with the same id.
    TxEnd {
        /// Transaction id.
        id: u64,
    },
}

/// Target number of ops per [`OpSource::refill`] batch.
///
/// Sources aim for roughly this many ops per call; a batch may run over
/// when a generator's natural unit (a churn step, a transaction, a warmup
/// phase) doesn't land on the boundary. At 32 bytes per [`Op`] the batch
/// buffer stays comfortably inside one L1 data cache's worth of stream.
pub const OP_BATCH: usize = 1024;

/// A pull-based supplier of operations.
///
/// This is the streaming alternative to materializing a whole workload as
/// a `Vec<Op>`: a source regenerates its stream lazily from internal
/// (typically RNG) state, so the resident footprint is one batch buffer
/// plus the generator state instead of the entire op vector.
///
/// The contract: `refill` **appends** a source-chosen batch of ops to
/// `buf` (aiming for about [`OP_BATCH`], but any positive amount is legal)
/// and returns how many ops it appended. Returning `0` means the stream is
/// exhausted; callers stop on the first `0` and must not call again
/// expecting more. Because sources append without clearing, collecting an
/// entire stream into one vector is just `while src.refill(&mut v) > 0 {}`
/// — which is exactly what [`OpSource::collect_ops`] does.
pub trait OpSource {
    /// Appends the next batch of ops to `buf`; returns the number
    /// appended, with `0` signalling exhaustion.
    fn refill(&mut self, buf: &mut Vec<Op>) -> usize;

    /// Drains the remaining stream into a fresh vector (the materialized
    /// form; useful for oracles and tests).
    fn collect_ops(mut self) -> Vec<Op>
    where
        Self: Sized,
    {
        let mut ops = Vec::new();
        while self.refill(&mut ops) > 0 {}
        ops
    }
}

impl<S: OpSource + ?Sized> OpSource for &mut S {
    fn refill(&mut self, buf: &mut Vec<Op>) -> usize {
        (**self).refill(buf)
    }
}

//! Simulation configuration: the measured condition, the machine/heap
//! shape, and the validating builder every caller constructs it through.
//!
//! [`SimConfig`] fields are crate-private: outside the simulator it can
//! only be obtained from [`SimConfig::default`] or a
//! [`SimConfigBuilder`], both of which guarantee the invariants that
//! [`crate::System::new`] relies on (a revoker core distinct from the app
//! core, a non-empty page-aligned arena, a root table that fits, ...).
//! Invalid combinations are rejected with a typed [`ConfigError`] at
//! build time instead of a panic mid-run.

use cheri_cap::CAP_SIZE;
use cheri_mem::{CoreId, PAGE_SIZE};
use cornucopia::{PteUpdateMode, Strategy};
use std::fmt;

/// Which condition a run measures: the spatial-safety-only baseline, or a
/// temporal-safety strategy (paper §5: every figure normalizes against the
/// same CHERI pure-capability baseline binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// snmalloc without mrs: immediate reuse, no quarantine, no revoker.
    Baseline,
    /// mrs + the given revocation strategy.
    Safe(Strategy),
}

impl Condition {
    /// The no-revocation baseline.
    #[must_use]
    pub fn baseline() -> Self {
        Condition::Baseline
    }

    /// Cornucopia Reloaded.
    #[must_use]
    pub fn reloaded() -> Self {
        Condition::Safe(Strategy::Reloaded)
    }

    /// Cornucopia (re-implementation).
    #[must_use]
    pub fn cornucopia() -> Self {
        Condition::Safe(Strategy::Cornucopia)
    }

    /// CHERIvoke (Cornucopia without the concurrent phase).
    #[must_use]
    pub fn cherivoke() -> Self {
        Condition::Safe(Strategy::CheriVoke)
    }

    /// Paint+sync (quarantine bookkeeping only; no safety).
    #[must_use]
    pub fn paint_sync() -> Self {
        Condition::Safe(Strategy::PaintSync)
    }

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Condition::Baseline => "baseline",
            Condition::Safe(s) => s.label(),
        }
    }
}

/// What the telemetry layer records (all off by default: the default
/// [`NullSink`](crate::telemetry::NullSink) keeps runs bit-identical to a
/// build without telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Snapshot the counter time-series every this many simulated cycles
    /// (`None` disables sampling).
    pub sample_every: Option<u64>,
    /// Ring capacity of the sample series: when full, the oldest sample
    /// is dropped (and counted) so memory stays bounded on long runs.
    pub series_capacity: usize,
    /// Ring capacity of the event journal.
    pub event_capacity: usize,
    /// Record typed events from the VM, revoker, and allocator.
    pub record_events: bool,
    /// Record revocation phase / pause spans.
    pub record_spans: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_every: None,
            series_capacity: 4096,
            event_capacity: 1 << 16,
            record_events: false,
            record_spans: false,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry fully disabled (the default).
    #[must_use]
    pub fn off() -> Self {
        TelemetryConfig::default()
    }

    /// Counter sampling only, every `interval` cycles.
    #[must_use]
    pub fn sampled(interval: u64) -> Self {
        TelemetryConfig { sample_every: Some(interval), ..TelemetryConfig::default() }
    }

    /// Everything on: sampling every `interval` cycles plus the event
    /// journal and span records.
    #[must_use]
    pub fn full(interval: u64) -> Self {
        TelemetryConfig {
            sample_every: Some(interval),
            record_events: true,
            record_spans: true,
            ..TelemetryConfig::default()
        }
    }

    /// Whether anything at all is recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sample_every.is_some() || self.record_events || self.record_spans
    }
}

/// Simulation configuration (defaults reproduce §5.1's setup at 1/64
/// memory scale: app pinned to core 3, revoker to core 2).
///
/// Construct via [`SimConfig::builder`] (or start from an existing config
/// with [`SimConfig::to_builder`] / [`SimConfig::with_condition`]):
///
/// ```
/// use morello_sim::{Condition, SimConfig};
///
/// let cfg = SimConfig::builder()
///     .cores(4)
///     .policy(Condition::reloaded())
///     .build()
///     .unwrap();
/// assert_eq!(cfg.revoker_threads(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub(crate) condition: Condition,
    pub(crate) heap_base: u64,
    pub(crate) heap_len: u64,
    pub(crate) max_objects: u64,
    pub(crate) min_quarantine: u64,
    pub(crate) quarantine_divisor: u64,
    pub(crate) app_core: CoreId,
    pub(crate) rev_core: CoreId,
    pub(crate) app_threads: usize,
    pub(crate) spare_revoker_core: bool,
    pub(crate) pte_mode: PteUpdateMode,
    pub(crate) always_trap_clean: bool,
    pub(crate) revoker_threads: usize,
    pub(crate) tx_interval: Option<u64>,
    pub(crate) latency_from_arrival: bool,
    pub(crate) bus_penalty_per_rev_txn: u64,
    pub(crate) telemetry: TelemetryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            condition: Condition::reloaded(),
            heap_base: 0x4000_0000,
            heap_len: 64 << 20,
            max_objects: 1 << 16,
            min_quarantine: 128 << 10, // 8 MiB / 64
            quarantine_divisor: 3,
            app_core: 3,
            rev_core: 2,
            app_threads: 1,
            spare_revoker_core: true,
            pte_mode: PteUpdateMode::Generation,
            always_trap_clean: false,
            revoker_threads: 1,
            tx_interval: None,
            latency_from_arrival: false,
            bus_penalty_per_rev_txn: 210,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl SimConfig {
    /// A builder seeded with the paper defaults.
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// A builder seeded with this configuration (for deriving variants).
    #[must_use]
    pub fn to_builder(&self) -> SimConfigBuilder {
        SimConfigBuilder { cfg: self.clone() }
    }

    /// This configuration with the condition swapped — the common "same
    /// workload, every strategy" sweep. Infallible: the condition does not
    /// participate in any validated invariant.
    #[must_use]
    pub fn with_condition(mut self, condition: Condition) -> Self {
        self.condition = condition;
        self
    }

    /// Measured condition.
    #[must_use]
    pub fn condition(&self) -> Condition {
        self.condition
    }

    /// Heap arena base address.
    #[must_use]
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// Heap arena length in bytes.
    #[must_use]
    pub fn heap_len(&self) -> u64 {
        self.heap_len
    }

    /// Root-table capacity (max simultaneously-tracked objects).
    #[must_use]
    pub fn max_objects(&self) -> u64 {
        self.max_objects
    }

    /// mrs minimum quarantine in bytes.
    #[must_use]
    pub fn min_quarantine(&self) -> u64 {
        self.min_quarantine
    }

    /// mrs quarantine divisor.
    #[must_use]
    pub fn quarantine_divisor(&self) -> u64 {
        self.quarantine_divisor
    }

    /// Core running the application thread.
    #[must_use]
    pub fn app_core(&self) -> CoreId {
        self.app_core
    }

    /// Core running the background revoker.
    #[must_use]
    pub fn rev_core(&self) -> CoreId {
        self.rev_core
    }

    /// Number of busy application threads (affects STW sync cost, §5.3).
    #[must_use]
    pub fn app_threads(&self) -> usize {
        self.app_threads
    }

    /// Whether the revoker has a spare core to itself.
    #[must_use]
    pub fn spare_revoker_core(&self) -> bool {
        self.spare_revoker_core
    }

    /// PTE maintenance mode ablation (§4.1).
    #[must_use]
    pub fn pte_mode(&self) -> PteUpdateMode {
        self.pte_mode
    }

    /// §7.6 always-trap-clean-pages ablation.
    #[must_use]
    pub fn always_trap_clean(&self) -> bool {
        self.always_trap_clean
    }

    /// Number of background revoker threads (§7.1 ablation).
    #[must_use]
    pub fn revoker_threads(&self) -> usize {
        self.revoker_threads
    }

    /// Fixed transaction arrival interval in cycles, if rate-scheduled.
    #[must_use]
    pub fn tx_interval(&self) -> Option<u64> {
        self.tx_interval
    }

    /// Whether transaction latency is measured from scheduled arrival.
    #[must_use]
    pub fn latency_from_arrival(&self) -> bool {
        self.latency_from_arrival
    }

    /// Extra application cycles per revoker DRAM transaction (§5.6 bus
    /// contention model).
    #[must_use]
    pub fn bus_penalty_per_rev_txn(&self) -> u64 {
        self.bus_penalty_per_rev_txn
    }

    /// Telemetry recording options.
    #[must_use]
    pub fn telemetry(&self) -> &TelemetryConfig {
        &self.telemetry
    }
}

/// Rejected [`SimConfigBuilder`] combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `revoker_threads` (or `cores`) was zero — the safe conditions need
    /// at least one background revoker core.
    ZeroRevokerThreads,
    /// `app_threads` was zero — there is always at least the driving
    /// application thread.
    ZeroAppThreads,
    /// The heap arena is empty or not a whole number of pages.
    BadHeapLen {
        /// The rejected length.
        len: u64,
    },
    /// The heap base is not page-aligned.
    UnalignedHeapBase {
        /// The rejected base.
        base: u64,
    },
    /// `max_objects` was zero.
    ZeroMaxObjects,
    /// The root table (`max_objects * 16` bytes) would not leave room for
    /// application objects in the arena.
    RootTableTooLarge {
        /// Bytes the root table needs.
        table_bytes: u64,
        /// The arena length it must fit (comfortably) inside.
        heap_len: u64,
    },
    /// `quarantine_divisor` was zero (division by zero in the policy).
    ZeroQuarantineDivisor,
    /// The app and revoker were pinned to the same core.
    CoreCollision {
        /// The shared core id.
        core: CoreId,
    },
    /// `tx_interval` was `Some(0)` — a zero-cycle schedule is meaningless.
    ZeroTxInterval,
    /// Telemetry sampling was enabled with a zero-cycle interval.
    ZeroSampleInterval,
    /// Telemetry sampling was enabled with a zero-capacity series ring.
    ZeroSeriesCapacity,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroRevokerThreads => {
                f.write_str("revoker_threads must be at least 1 (zero revoker cores)")
            }
            ConfigError::ZeroAppThreads => f.write_str("app_threads must be at least 1"),
            ConfigError::BadHeapLen { len } => {
                write!(f, "heap_len {len:#x} must be a nonzero multiple of the page size")
            }
            ConfigError::UnalignedHeapBase { base } => {
                write!(f, "heap_base {base:#x} must be page-aligned")
            }
            ConfigError::ZeroMaxObjects => f.write_str("max_objects must be at least 1"),
            ConfigError::RootTableTooLarge { table_bytes, heap_len } => write!(
                f,
                "root table of {table_bytes} bytes does not fit a {heap_len}-byte arena \
                 (must be at most a quarter of it)"
            ),
            ConfigError::ZeroQuarantineDivisor => f.write_str("quarantine_divisor must be at least 1"),
            ConfigError::CoreCollision { core } => {
                write!(f, "app_core and rev_core are both {core}; pin them to distinct cores")
            }
            ConfigError::ZeroTxInterval => f.write_str("tx_interval must be nonzero when set"),
            ConfigError::ZeroSampleInterval => {
                f.write_str("telemetry sample_every must be nonzero when set")
            }
            ConfigError::ZeroSeriesCapacity => {
                f.write_str("telemetry series_capacity must be nonzero when sampling")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`SimConfig`]. Obtained from
/// [`SimConfig::builder`] (paper defaults) or [`SimConfig::to_builder`];
/// finished with [`SimConfigBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the measured condition.
    #[must_use]
    pub fn condition(mut self, condition: Condition) -> Self {
        self.cfg.condition = condition;
        self
    }

    /// Alias for [`Self::condition`]: the revocation policy under test.
    #[must_use]
    pub fn policy(self, condition: Condition) -> Self {
        self.condition(condition)
    }

    /// Sets the heap arena base address (page-aligned).
    #[must_use]
    pub fn heap_base(mut self, base: u64) -> Self {
        self.cfg.heap_base = base;
        self
    }

    /// Sets the heap arena length in bytes (nonzero, page-multiple).
    #[must_use]
    pub fn heap_len(mut self, len: u64) -> Self {
        self.cfg.heap_len = len;
        self
    }

    /// Sets the root-table capacity (max simultaneously-live objects).
    #[must_use]
    pub fn max_objects(mut self, n: u64) -> Self {
        self.cfg.max_objects = n;
        self
    }

    /// Sets the mrs minimum quarantine in bytes.
    #[must_use]
    pub fn min_quarantine(mut self, bytes: u64) -> Self {
        self.cfg.min_quarantine = bytes;
        self
    }

    /// Sets the mrs quarantine divisor.
    #[must_use]
    pub fn quarantine_divisor(mut self, divisor: u64) -> Self {
        self.cfg.quarantine_divisor = divisor;
        self
    }

    /// Pins the application thread to `core`.
    #[must_use]
    pub fn app_core(mut self, core: CoreId) -> Self {
        self.cfg.app_core = core;
        self
    }

    /// Pins the (first) background revoker thread to `core`.
    #[must_use]
    pub fn rev_core(mut self, core: CoreId) -> Self {
        self.cfg.rev_core = core;
        self
    }

    /// Sets the number of busy application threads.
    #[must_use]
    pub fn app_threads(mut self, n: usize) -> Self {
        self.cfg.app_threads = n;
        self
    }

    /// Sets whether the revoker has a spare core to itself.
    #[must_use]
    pub fn spare_revoker_core(mut self, spare: bool) -> Self {
        self.cfg.spare_revoker_core = spare;
        self
    }

    /// Sets the PTE maintenance mode (§4.1 ablation).
    #[must_use]
    pub fn pte_mode(mut self, mode: PteUpdateMode) -> Self {
        self.cfg.pte_mode = mode;
        self
    }

    /// Sets the §7.6 always-trap-clean-pages ablation.
    #[must_use]
    pub fn always_trap_clean(mut self, on: bool) -> Self {
        self.cfg.always_trap_clean = on;
        self
    }

    /// Sets the number of background revoker threads (§7.1 ablation).
    /// Must be at least 1.
    #[must_use]
    pub fn revoker_threads(mut self, n: usize) -> Self {
        self.cfg.revoker_threads = n;
        self
    }

    /// Alias for [`Self::revoker_threads`]: how many cores the parallel
    /// revocation sweep fans out over.
    #[must_use]
    pub fn cores(self, n: usize) -> Self {
        self.revoker_threads(n)
    }

    /// Sets the fixed transaction arrival interval in cycles (`None` runs
    /// transactions back-to-back). Accepts `u64` or `Option<u64>`.
    #[must_use]
    pub fn tx_interval(mut self, interval: impl Into<Option<u64>>) -> Self {
        self.cfg.tx_interval = interval.into();
        self
    }

    /// Measures transaction latency from scheduled arrival (open-loop).
    #[must_use]
    pub fn latency_from_arrival(mut self, on: bool) -> Self {
        self.cfg.latency_from_arrival = on;
        self
    }

    /// Sets the §5.6 bus-contention penalty per revoker DRAM transaction.
    #[must_use]
    pub fn bus_penalty_per_rev_txn(mut self, cycles: u64) -> Self {
        self.cfg.bus_penalty_per_rev_txn = cycles;
        self
    }

    /// Replaces the telemetry options wholesale.
    #[must_use]
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Enables counter sampling every `interval` simulated cycles.
    #[must_use]
    pub fn sample_every(mut self, interval: u64) -> Self {
        self.cfg.telemetry.sample_every = Some(interval);
        self
    }

    /// Enables the typed event journal.
    #[must_use]
    pub fn record_events(mut self, on: bool) -> Self {
        self.cfg.telemetry.record_events = on;
        self
    }

    /// Enables revocation phase / pause span records.
    #[must_use]
    pub fn record_spans(mut self, on: bool) -> Self {
        self.cfg.telemetry.record_spans = on;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invariant violated.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        let c = self.cfg;
        if c.revoker_threads == 0 {
            return Err(ConfigError::ZeroRevokerThreads);
        }
        if c.app_threads == 0 {
            return Err(ConfigError::ZeroAppThreads);
        }
        let page = PAGE_SIZE;
        if c.heap_len == 0 || !c.heap_len.is_multiple_of(page) {
            return Err(ConfigError::BadHeapLen { len: c.heap_len });
        }
        if !c.heap_base.is_multiple_of(page) {
            return Err(ConfigError::UnalignedHeapBase { base: c.heap_base });
        }
        if c.max_objects == 0 {
            return Err(ConfigError::ZeroMaxObjects);
        }
        let table_bytes = c
            .max_objects
            .checked_mul(CAP_SIZE)
            .ok_or(ConfigError::RootTableTooLarge { table_bytes: u64::MAX, heap_len: c.heap_len })?;
        if table_bytes > c.heap_len / 4 {
            return Err(ConfigError::RootTableTooLarge { table_bytes, heap_len: c.heap_len });
        }
        if c.quarantine_divisor == 0 {
            return Err(ConfigError::ZeroQuarantineDivisor);
        }
        if c.app_core == c.rev_core {
            return Err(ConfigError::CoreCollision { core: c.app_core });
        }
        if c.tx_interval == Some(0) {
            return Err(ConfigError::ZeroTxInterval);
        }
        if c.telemetry.sample_every == Some(0) {
            return Err(ConfigError::ZeroSampleInterval);
        }
        if c.telemetry.sample_every.is_some() && c.telemetry.series_capacity == 0 {
            return Err(ConfigError::ZeroSeriesCapacity);
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        SimConfig::default().to_builder().build().unwrap();
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = SimConfig::builder()
            .cores(4)
            .policy(Condition::cornucopia())
            .heap_len(8 << 20)
            .max_objects(1 << 10)
            .min_quarantine(64 << 10)
            .tx_interval(1_000_000)
            .sample_every(50_000)
            .record_events(true)
            .record_spans(true)
            .build()
            .unwrap();
        assert_eq!(cfg.revoker_threads(), 4);
        assert_eq!(cfg.condition(), Condition::cornucopia());
        assert_eq!(cfg.heap_len(), 8 << 20);
        assert_eq!(cfg.tx_interval(), Some(1_000_000));
        assert_eq!(cfg.telemetry().sample_every, Some(50_000));
        assert!(cfg.telemetry().enabled());
    }

    #[test]
    fn zero_revoker_cores_rejected() {
        assert_eq!(
            SimConfig::builder().cores(0).build().unwrap_err(),
            ConfigError::ZeroRevokerThreads
        );
    }

    #[test]
    fn invalid_combos_rejected() {
        assert_eq!(
            SimConfig::builder().app_threads(0).build().unwrap_err(),
            ConfigError::ZeroAppThreads
        );
        assert_eq!(
            SimConfig::builder().heap_len(0).build().unwrap_err(),
            ConfigError::BadHeapLen { len: 0 }
        );
        assert_eq!(
            SimConfig::builder().heap_len(4096 + 13).build().unwrap_err(),
            ConfigError::BadHeapLen { len: 4096 + 13 }
        );
        assert_eq!(
            SimConfig::builder().heap_base(0x1001).build().unwrap_err(),
            ConfigError::UnalignedHeapBase { base: 0x1001 }
        );
        assert_eq!(
            SimConfig::builder().max_objects(0).build().unwrap_err(),
            ConfigError::ZeroMaxObjects
        );
        assert!(matches!(
            SimConfig::builder().heap_len(1 << 20).build().unwrap_err(),
            ConfigError::RootTableTooLarge { .. }
        ));
        assert_eq!(
            SimConfig::builder().quarantine_divisor(0).build().unwrap_err(),
            ConfigError::ZeroQuarantineDivisor
        );
        assert_eq!(
            SimConfig::builder().app_core(2).rev_core(2).build().unwrap_err(),
            ConfigError::CoreCollision { core: 2 }
        );
        assert_eq!(
            SimConfig::builder().tx_interval(0).build().unwrap_err(),
            ConfigError::ZeroTxInterval
        );
        assert_eq!(
            SimConfig::builder().sample_every(0).build().unwrap_err(),
            ConfigError::ZeroSampleInterval
        );
        let mut t = TelemetryConfig::sampled(1000);
        t.series_capacity = 0;
        assert_eq!(
            SimConfig::builder().telemetry(t).build().unwrap_err(),
            ConfigError::ZeroSeriesCapacity
        );
    }

    #[test]
    fn with_condition_preserves_everything_else() {
        let a = SimConfig::builder().heap_len(16 << 20).build().unwrap();
        let b = a.clone().with_condition(Condition::baseline());
        assert_eq!(b.condition(), Condition::baseline());
        assert_eq!(b.heap_len(), a.heap_len());
        assert_eq!(b.revoker_threads(), a.revoker_threads());
    }

    #[test]
    fn errors_display() {
        for e in [
            ConfigError::ZeroRevokerThreads,
            ConfigError::CoreCollision { core: 1 },
            ConfigError::RootTableTooLarge { table_bytes: 1 << 20, heap_len: 1 << 20 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

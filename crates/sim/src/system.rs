//! The simulated system: machine + revoker + heap, driven by an op stream.

use crate::config::{Condition, SimConfig};
use crate::ops::{ObjId, Op, OpSource, OP_BATCH};
use crate::report::RunReport;
use crate::stats::RunStats;
use crate::telemetry::{
    NullSink, Recorder, Sample, Span, SpanKind, StaleChaseOutcome, TelemetryEvent, TelemetrySink,
};
use cheri_cap::{Capability, CAP_SIZE};
use cheri_mem::CoreId;
use cheri_vm::{Machine, ThreadId, VmFault};
use cheri_alloc::{AllocError, HeapLayout, Mrs, MrsConfig};
use cornucopia::{Revoker, RevokerConfig, StepOutcome, Strategy};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Simulation failures (workload or configuration bugs; a correct run
/// never produces one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An architectural fault that is not a handleable barrier fault.
    Vm(VmFault),
    /// Allocator error (bad free).
    Alloc(AllocError),
    /// The arena is exhausted even after forcing revocation.
    OutOfMemory,
    /// Operation referenced a slot with no live object.
    UnknownObj(ObjId),
    /// Alloc targeted a slot that already holds a live object.
    SlotBusy(ObjId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Vm(e) => write!(f, "vm fault: {e}"),
            SimError::Alloc(e) => write!(f, "allocator: {e}"),
            SimError::OutOfMemory => f.write_str("arena exhausted after forced revocation"),
            SimError::UnknownObj(o) => write!(f, "operation on dead object {o}"),
            SimError::SlotBusy(o) => write!(f, "alloc into live slot {o}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<VmFault> for SimError {
    fn from(e: VmFault) -> Self {
        SimError::Vm(e)
    }
}

impl From<AllocError> for SimError {
    fn from(e: AllocError) -> Self {
        SimError::Alloc(e)
    }
}

/// Wall-clock bookkeeping for the revocation pass in flight, kept only
/// when telemetry is on (spans cover each phase, Figure 9).
#[derive(Debug)]
struct EpochTrace {
    /// Epoch counter value during the pass (odd, §2.2.3).
    epoch: u64,
    /// Wall cycle the pass began (before the entry pause).
    start: u64,
    /// Wall cycle the concurrent phase began (after the entry pause).
    concurrent_start: u64,
    /// `per_core_concurrent_cycles` snapshot at pass start, for per-core
    /// attribution of the sweep.
    core_marks: Vec<u64>,
}

/// One interior capability slot written by `LinkPtr`, tracked (by slot
/// address) by the telemetry-gated dangling-pointer instrument.
#[derive(Debug, Clone, Copy)]
struct LinkEntry {
    /// The object the stored pointer referred to.
    to: ObjId,
    /// That object's identity generation when the link was written, so a
    /// later reuse of the same root slot id is recognized as stale.
    to_gen: u64,
}

/// The simulated system. Construct with [`System::new`] (or
/// [`System::with_sink`] for a custom telemetry sink), execute with
/// [`System::run`], or drive op-by-op with [`System::exec`] and finish
/// with [`System::finish`].
#[derive(Debug)]
pub struct System {
    cfg: SimConfig,
    machine: Machine,
    revoker: Revoker,
    heap: Mrs,
    mmap_space: cheri_alloc::MmapSpace,
    root: Capability,
    app_thread: ThreadId,
    live: HashSet<ObjId>,
    // Clocks and ledgers.
    wall: u64,
    app_cpu: u64,
    rev_cpu: u64,
    /// Wall point up to which background revoker progress was applied.
    rev_mark: u64,
    stats: RunStats,
    tx_start: HashMap<u64, u64>,
    next_arrival: u64,
    last_release_epoch: u64,
    reg_rr: usize,
    // Telemetry (all dormant under the default `NullSink`).
    sink: Box<dyn TelemetrySink>,
    /// Cached `sink.is_enabled()`: one branch guards every hook.
    telemetry_on: bool,
    /// Sampling period (`u64::MAX` sentinel disables the sampler).
    next_sample: u64,
    sample_interval: u64,
    epoch_trace: Option<EpochTrace>,
    scratch_vm: Vec<cheri_vm::VmEvent>,
    scratch_rev: Vec<cornucopia::RevokerEvent>,
    scratch_alloc: Vec<cheri_alloc::AllocEvent>,
    // Dangling-pointer instrument (telemetry-gated, zero simulated cost).
    // Why a side table instead of inspecting heap memory: recycled storage
    // is never scrubbed, so physical tags alone cannot distinguish "the
    // program stored this pointer here" from allocator leftovers. The
    // table mirrors the written links exactly: inserts at `LinkPtr`,
    // address-range removal wherever the physical slot's tag is destroyed
    // (data writes) or the region gains a new owner (alloc/mmap reuse).
    link_table: BTreeMap<u64, LinkEntry>,
    /// Identity generation per root slot, bumped on `Alloc`/`Mmap`, so a
    /// freed-then-reused slot id does not masquerade as its old object.
    obj_gen: HashMap<ObjId, u64>,
}

impl System {
    /// Builds a system: maps the arena, allocates the root table, and
    /// configures the revoker per `cfg`. The telemetry sink is chosen from
    /// `cfg.telemetry()`: a [`Recorder`] when anything is enabled, the
    /// free [`NullSink`] otherwise.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let sink: Box<dyn TelemetrySink> = if cfg.telemetry.enabled() {
            Box::new(Recorder::new(cfg.telemetry.clone()))
        } else {
            Box::new(NullSink)
        };
        System::with_sink(cfg, sink)
    }

    /// Builds a system delivering telemetry to a caller-supplied sink
    /// (e.g. one streaming events out of process). Component event
    /// recording is switched on iff `sink.is_enabled()`.
    #[must_use]
    pub fn with_sink(cfg: SimConfig, sink: Box<dyn TelemetrySink>) -> Self {
        let layout = HeapLayout::new(cfg.heap_base, cfg.heap_len);
        let strategy = match cfg.condition {
            Condition::Baseline => Strategy::PaintSync, // unused
            Condition::Safe(s) => s,
        };
        // Distinct revoker cores (never the app core): rev_core first, then
        // the lowest free core ids. Each shard of the parallel sweep charges
        // its own core's caches, so duplicates would fold traffic together.
        let mut revoker_cores = vec![cfg.rev_core];
        let mut candidate: CoreId = 0;
        while revoker_cores.len() < cfg.revoker_threads.max(1) {
            if candidate != cfg.app_core && !revoker_cores.contains(&candidate) {
                revoker_cores.push(candidate);
            }
            candidate += 1;
        }
        let num_cores = revoker_cores
            .iter()
            .copied()
            .chain([cfg.app_core])
            .max()
            .unwrap_or(0)
            .max(3)
            + 1;
        let mut machine = Machine::new(num_cores);
        let revoker = Revoker::new(
            RevokerConfig {
                strategy,
                revoker_cores,
                pte_mode: cfg.pte_mode,
                always_trap_clean: cfg.always_trap_clean,
                ..RevokerConfig::default()
            },
            layout.base,
            layout.total_len,
        );
        let mut heap = Mrs::new(
            layout,
            MrsConfig {
                min_quarantine_bytes: cfg.min_quarantine,
                quarantine_divisor: cfg.quarantine_divisor,
                ..MrsConfig::default()
            },
        );
        // The root table: one permanently-live large allocation holding one
        // capability slot per object id.
        let root = heap
            .alloc(&mut machine, cfg.app_core, cfg.max_objects * CAP_SIZE)
            .expect("arena must fit the root table")
            .cap;
        let app_thread = cfg.app_core; // threads are created per core
        let mmap_space = cheri_alloc::MmapSpace::new(layout.mmap_base(), layout.mmap_len());
        let telemetry_on = sink.is_enabled();
        let sample_interval = sink.sample_interval().unwrap_or(0);
        let next_sample = if sample_interval > 0 { sample_interval } else { u64::MAX };
        let mut revoker = revoker;
        if telemetry_on {
            // Component logging never charges cycles, so counters stay
            // bit-identical with it on; it is gated anyway so the default
            // path never touches the buffers.
            machine.set_event_recording(true);
            revoker.set_event_recording(true);
            heap.set_event_recording(true);
        }
        System {
            cfg,
            machine,
            revoker,
            heap,
            mmap_space,
            root,
            app_thread,
            live: HashSet::new(),
            wall: 0,
            app_cpu: 0,
            rev_cpu: 0,
            rev_mark: 0,
            stats: RunStats::default(),
            tx_start: HashMap::new(),
            next_arrival: 0,
            last_release_epoch: 0,
            reg_rr: 0,
            sink,
            telemetry_on,
            next_sample,
            sample_interval,
            epoch_trace: None,
            scratch_vm: Vec::new(),
            scratch_rev: Vec::new(),
            scratch_alloc: Vec::new(),
            link_table: BTreeMap::new(),
            obj_gen: HashMap::new(),
        }
    }

    /// The simulated machine (for assertions in tests and examples).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The revoker (phase records, stats).
    #[must_use]
    pub fn revoker(&self) -> &Revoker {
        &self.revoker
    }

    /// The heap shim.
    #[must_use]
    pub fn heap(&self) -> &Mrs {
        &self.heap
    }

    /// Current wall clock in cycles.
    #[must_use]
    pub fn wall(&self) -> u64 {
        self.wall
    }

    /// Runs an op stream to completion and returns the [`RunReport`]
    /// (statistics + telemetry; derefs to [`RunStats`]).
    pub fn run(mut self, ops: impl IntoIterator<Item = Op>) -> Result<RunReport, SimError> {
        let mut iter = ops.into_iter();
        let mut buf = Vec::with_capacity(OP_BATCH);
        loop {
            buf.clear();
            buf.extend(iter.by_ref().take(OP_BATCH));
            if buf.is_empty() {
                break;
            }
            self.exec_batch(&buf)?;
        }
        Ok(self.finish())
    }

    /// Runs a lazily-generated op stream to completion, pulling batches
    /// from `source` into one reused buffer. Resident footprint is
    /// O([`OP_BATCH`] + generator state) instead of O(stream length), and
    /// the resulting [`RunStats`] are bit-identical to materializing the
    /// same stream and calling [`System::run`].
    pub fn run_stream<S: OpSource + ?Sized>(
        mut self,
        source: &mut S,
    ) -> Result<RunReport, SimError> {
        let mut buf = Vec::with_capacity(OP_BATCH);
        loop {
            buf.clear();
            if source.refill(&mut buf) == 0 {
                break;
            }
            self.exec_batch(&buf)?;
        }
        Ok(self.finish())
    }

    /// Executes a batch of operations through the fused dispatch path.
    ///
    /// Semantically identical to calling [`System::exec`] per op — the
    /// goldens pin this — but cheaper: runs of consecutive `Compute` (and
    /// separately `ThinkIdle`) ops collapse into one `advance` while the
    /// revoker is idle. That fusion is exact because the idle
    /// `pump_revoker` path only syncs `rev_mark` to the wall clock (and
    /// `maybe_release` is a no-op at any op boundary with no pass in
    /// flight), so N idle advances and one summed advance produce the same
    /// state. While a pass *is* in flight the per-op path is kept: sweep
    /// budgets overshoot at page granularity, so `background_step(a)` then
    /// `background_step(b)` is not `background_step(a + b)`. Data ops are
    /// never fused across op boundaries — each performs an architecturally
    /// visible capability load through the barrier — but each already
    /// issues its byte traffic as a single ranged access internally.
    pub fn exec_batch(&mut self, ops: &[Op]) -> Result<(), SimError> {
        if self.telemetry_on {
            // Telemetry journals at op granularity (events drained and
            // counters sampled between ops); fusing would coarsen the
            // timeline, so fall back to the per-op path.
            for &op in ops {
                self.exec(op)?;
            }
            return Ok(());
        }
        let mut i = 0;
        while i < ops.len() {
            match ops[i] {
                Op::Compute { cycles } if !self.revoker.is_revoking() => {
                    let mut total = cycles;
                    i += 1;
                    while let Some(&Op::Compute { cycles }) = ops.get(i) {
                        total += cycles;
                        i += 1;
                    }
                    self.advance(total, true);
                }
                Op::ThinkIdle { cycles } if !self.revoker.is_revoking() => {
                    let mut total = cycles;
                    i += 1;
                    while let Some(&Op::ThinkIdle { cycles }) = ops.get(i) {
                        total += cycles;
                        i += 1;
                    }
                    self.advance(total, false);
                }
                op => {
                    self.exec_op(op)?;
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// Finalizes the run: drains any in-flight revocation and collects
    /// statistics plus whatever telemetry the sink gathered.
    #[must_use]
    pub fn finish(mut self) -> RunReport {
        // Let an in-flight pass finish (without charging the app).
        while self.revoker.is_revoking() {
            match self.revoker.background_step(&mut self.machine, 10_000_000) {
                StepOutcome::NeedsFinalStw { .. } => {
                    let pause = self.revoker.finish_stw(&mut self.machine, self.cfg.app_threads);
                    self.rev_cpu += pause;
                    self.stats.pauses.push(pause);
                    self.note_stw_pause(pause);
                }
                StepOutcome::Working { used } | StepOutcome::Finished { used } => {
                    self.rev_cpu += used;
                }
                StepOutcome::Idle => break,
            }
        }
        if self.telemetry_on {
            self.note_pass_progress();
            self.drain_events();
        }
        let condition = self.cfg.condition.label();
        let stats = self.collect_stats();
        RunReport::new(condition, stats, self.sink.into_data())
    }

    /// Finalizes the run, discarding telemetry (legacy shorthand for
    /// `finish().into_stats()`).
    #[must_use]
    pub fn into_stats(self) -> RunStats {
        self.finish().into_stats()
    }

    fn collect_stats(&mut self) -> RunStats {
        let mut s = std::mem::take(&mut self.stats);
        s.wall_cycles = self.wall;
        s.app_cpu_cycles = self.app_cpu;
        s.revoker_cpu_cycles = self.rev_cpu;
        let rev_cores = self.revoker.cores().to_vec();
        let mut app_dram = 0;
        for core in 0..self.machine.num_cores() {
            let d = self.machine.mem().traffic(core).dram_transactions;
            if rev_cores.contains(&core) {
                s.revoker_dram += d;
            } else {
                app_dram += d;
            }
        }
        s.revoker_dram_per_core = rev_cores
            .iter()
            .map(|&core| self.machine.mem().traffic(core).dram_transactions)
            .collect();
        s.revoker_cores = rev_cores;
        s.app_dram = app_dram;
        s.peak_rss = self.machine.peak_resident_bytes();
        let vs = self.machine.vm_stats();
        s.tlb_misses = vs.tlb_misses;
        s.tlb_shootdowns = vs.tlb_shootdowns;
        s.pte_writes = vs.pte_writes;
        let rs = self.revoker.stats();
        s.faults = rs.load_faults;
        s.fault_cycles = rs.fault_cycles;
        s.revocations = rs.epochs;
        s.pages_swept = rs.pages_swept;
        let ms = self.heap.stats();
        s.total_freed_bytes = ms.total_freed_bytes;
        s.allocs = ms.allocs;
        s.frees = ms.frees;
        s.mean_alloc_at_revocation = ms
            .allocated_at_revocation_sum
            .checked_div(ms.revocations_requested)
            .unwrap_or(0);
        s.blocked_allocs = ms.blocked_allocs;
        s.phases = self.revoker.phase_records().to_vec();
        s
    }

    /// Executes one operation.
    pub fn exec(&mut self, op: Op) -> Result<(), SimError> {
        let result = self.exec_op(op);
        if self.telemetry_on {
            self.drain_events();
            self.poll_sample();
        }
        result
    }

    fn exec_op(&mut self, op: Op) -> Result<(), SimError> {
        match op {
            Op::Alloc { obj, size } => self.op_alloc(obj, size),
            Op::Free { obj } => self.op_free(obj),
            Op::LoadObj { obj } => self.op_load(obj),
            Op::ReadData { obj, len } => self.op_data(obj, len, false),
            Op::WriteData { obj, len } => self.op_data(obj, len, true),
            Op::LinkPtr { from, slot, to } => self.op_link(from, slot, to),
            Op::ChasePtr { from, slot } => self.op_chase(from, slot),
            Op::Compute { cycles } => {
                self.advance(cycles, true);
                Ok(())
            }
            Op::ThinkIdle { cycles } => {
                self.advance(cycles, false);
                Ok(())
            }
            Op::SyscallHoard { obj } => self.op_hoard(obj),
            Op::Mmap { obj, len } => self.op_mmap(obj, len),
            Op::Munmap { obj } => self.op_munmap(obj),
            Op::TxBegin { id } => {
                let mut start = self.wall;
                if let Some(interval) = self.cfg.tx_interval {
                    // The schedule starts at the first transaction, not at
                    // boot: warmup happens before the benchmark window.
                    let arrival = if self.next_arrival == 0 { self.wall } else { self.next_arrival };
                    self.next_arrival = arrival + interval;
                    if arrival > self.wall {
                        // Early: idle until the scheduled arrival.
                        let idle = arrival - self.wall;
                        self.advance(idle, false);
                        start = self.wall;
                    } else if self.cfg.latency_from_arrival {
                        // Late: the request queued while the server was
                        // behind; its latency includes the wait.
                        start = arrival;
                    }
                }
                self.tx_start.insert(id, start);
                Ok(())
            }
            Op::TxEnd { id } => {
                if let Some(start) = self.tx_start.remove(&id) {
                    self.stats.tx_latencies.push(self.wall - start);
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Time accounting
    // ------------------------------------------------------------------

    /// Advances the wall clock by `cycles` of application activity
    /// (`busy`: CPU-consuming) and pumps the background revoker across the
    /// same interval.
    fn advance(&mut self, cycles: u64, busy: bool) {
        let charged = if busy && self.contended() {
            // Revoker competes for the application cores: 3 runnable
            // threads on 2 cores => each op takes 1.5x wall time.
            cycles + cycles / 2
        } else {
            cycles
        };
        self.wall += charged;
        if busy {
            self.app_cpu += cycles;
        }
        self.pump_revoker(busy);
    }

    fn contended(&self) -> bool {
        !self.cfg.spare_revoker_core && self.revoker.is_revoking()
    }

    /// DRAM transactions issued so far across all revoker cores.
    fn revoker_dram_now(&self) -> u64 {
        self.revoker
            .cores()
            .iter()
            .map(|&core| self.machine.mem().traffic(core).dram_transactions)
            .sum()
    }

    /// Gives the background revoker the wall time that elapsed since its
    /// last pump. `app_busy` affects whether a final STW pause extends the
    /// wall clock (a pause inside idle time is hidden; §5.2 discussion).
    fn pump_revoker(&mut self, app_busy: bool) {
        if !self.revoker.is_revoking() {
            self.rev_mark = self.wall;
            self.maybe_release();
            return;
        }
        let elapsed = self.wall.saturating_sub(self.rev_mark);
        // Without a spare core the revoker only gets a share of wall time.
        let budget = if self.cfg.spare_revoker_core { elapsed } else { elapsed * 2 / 3 };
        if budget == 0 {
            return;
        }
        let rev_dram_before = self.revoker_dram_now();
        let outcome = self.revoker.background_step(&mut self.machine, budget);
        if app_busy && self.cfg.spare_revoker_core {
            // Shared-bus contention: the sweep's DRAM traffic stalls the
            // application (§5.6). Only with a spare revoker core — when the
            // revoker time-slices with the application, its traffic is
            // serialized inside its own quantum and the CPU contention
            // factor already accounts for the slowdown.
            let delta = self.revoker_dram_now() - rev_dram_before;
            let penalty = delta * self.cfg.bus_penalty_per_rev_txn;
            self.wall += penalty;
            self.app_cpu += penalty;
        }
        match outcome {
            StepOutcome::Idle => {
                self.rev_mark = self.wall;
            }
            StepOutcome::Working { used } => {
                self.rev_cpu += used;
                self.rev_mark = self.wall;
            }
            StepOutcome::Finished { used } => {
                self.rev_cpu += used;
                self.rev_mark = self.wall;
                self.maybe_release();
            }
            StepOutcome::NeedsFinalStw { .. } => {
                let pause = self.revoker.finish_stw(&mut self.machine, self.cfg.app_threads);
                self.stats.pauses.push(pause);
                self.rev_cpu += pause;
                self.note_stw_pause(pause);
                if app_busy {
                    // The world (including the app) stops.
                    self.wall += pause;
                }
                self.rev_mark = self.wall;
                self.maybe_release();
            }
        }
    }

    /// Blocks the application until the in-flight pass completes (mrs's
    /// hard-full behaviour).
    fn block_on_revocation(&mut self) {
        self.heap.note_blocked_alloc();
        let block_start = self.wall;
        let block_epoch = self.revoker.epoch();
        while self.revoker.is_revoking() {
            match self.revoker.background_step(&mut self.machine, 1_000_000) {
                StepOutcome::NeedsFinalStw { .. } => {
                    let pause = self.revoker.finish_stw(&mut self.machine, self.cfg.app_threads);
                    self.stats.pauses.push(pause);
                    self.rev_cpu += pause;
                    self.note_stw_pause(pause);
                    self.wall += pause;
                    self.stats.blocked_cycles += pause;
                }
                StepOutcome::Working { used } | StepOutcome::Finished { used } => {
                    self.rev_cpu += used;
                    self.wall += used;
                    self.stats.blocked_cycles += used;
                }
                StepOutcome::Idle => break,
            }
        }
        if self.telemetry_on && self.wall > block_start {
            self.sink.record_span(Span {
                kind: SpanKind::BlockedAlloc,
                epoch: block_epoch,
                start: block_start,
                end: self.wall,
                core: Some(self.cfg.app_core),
                busy_cycles: self.wall - block_start,
            });
        }
        self.rev_mark = self.wall;
        self.maybe_release();
    }

    /// Starts a revocation pass now (policy fired during `free`).
    fn start_revocation(&mut self) {
        let pause = self.revoker.start_epoch_with_busy_threads(&mut self.machine, self.cfg.app_threads);
        self.stats.pauses.push(pause);
        self.note_stw_pause(pause);
        if self.telemetry_on {
            self.epoch_trace = Some(EpochTrace {
                epoch: self.revoker.epoch(),
                start: self.wall,
                concurrent_start: self.wall + pause,
                core_marks: self.revoker.per_core_concurrent_cycles().to_vec(),
            });
        }
        self.wall += pause;
        self.rev_cpu += pause;
        self.rev_mark = self.wall;
        self.maybe_release();
    }

    /// Releases quarantine batches if the epoch advanced.
    fn maybe_release(&mut self) {
        if self.telemetry_on {
            self.note_pass_progress();
        }
        let e = self.revoker.epoch();
        if e != self.last_release_epoch {
            self.last_release_epoch = e;
            let c = self.heap.poll_release(&mut self.machine, &mut self.revoker, self.cfg.app_core);
            self.mmap_space.poll_release(&mut self.machine, &mut self.revoker, self.cfg.app_core);
            self.wall += c;
            self.app_cpu += c;
        }
    }

    // ------------------------------------------------------------------
    // Telemetry plumbing (dormant under the default `NullSink`: every
    // entry point is behind the cached `telemetry_on` flag or the
    // `next_sample == u64::MAX` sentinel)
    // ------------------------------------------------------------------

    /// Records a stop-the-world pause span starting at the *current* wall
    /// position — callers invoke this before adding the pause to the wall
    /// clock, so the span covers the world-stopped window itself. A pause
    /// hidden inside idle time (or after the last op, in [`System::finish`])
    /// still gets its true width even though the wall does not move.
    fn note_stw_pause(&mut self, pause: u64) {
        if self.telemetry_on {
            self.sink.record_span(Span {
                kind: SpanKind::StwPause,
                epoch: self.revoker.epoch(),
                start: self.wall,
                end: self.wall + pause,
                core: None,
                busy_cycles: pause,
            });
        }
    }

    /// If the traced pass has completed, emits its per-core concurrent
    /// sweep spans and the whole-epoch span (Figure 9's per-phase data).
    fn note_pass_progress(&mut self) {
        if self.revoker.is_revoking() {
            return;
        }
        let Some(trace) = self.epoch_trace.take() else { return };
        let per_core = self.revoker.per_core_concurrent_cycles();
        let mut busy_total = 0;
        for (i, &core) in self.revoker.cores().iter().enumerate() {
            let before = trace.core_marks.get(i).copied().unwrap_or(0);
            let delta = per_core.get(i).copied().unwrap_or(0).saturating_sub(before);
            if delta > 0 {
                busy_total += delta;
                self.sink.record_span(Span {
                    kind: SpanKind::ConcurrentSweep,
                    epoch: trace.epoch,
                    start: trace.concurrent_start,
                    end: self.wall,
                    core: Some(core),
                    busy_cycles: delta,
                });
            }
        }
        self.sink.record_span(Span {
            kind: SpanKind::Epoch,
            epoch: trace.epoch,
            start: trace.start,
            end: self.wall,
            core: None,
            busy_cycles: busy_total,
        });
    }

    /// Moves component event logs into the sink, stamped with the current
    /// wall cycle (components have no clock of their own; op granularity
    /// is the journal's resolution).
    fn drain_events(&mut self) {
        let at = self.wall;
        self.machine.drain_events_into(&mut self.scratch_vm);
        for e in self.scratch_vm.drain(..) {
            self.sink.record_event(at, TelemetryEvent::Vm(e));
        }
        self.revoker.drain_events_into(&mut self.scratch_rev);
        for e in self.scratch_rev.drain(..) {
            self.sink.record_event(at, TelemetryEvent::Revoker(e));
        }
        self.heap.drain_events_into(&mut self.scratch_alloc);
        for e in self.scratch_alloc.drain(..) {
            self.sink.record_event(at, TelemetryEvent::Alloc(e));
        }
    }

    /// Emits a counter snapshot for every sampling boundary the wall
    /// clock crossed since the last poll.
    fn poll_sample(&mut self) {
        while self.wall >= self.next_sample {
            let at = self.next_sample;
            self.take_sample(at);
            self.next_sample += self.sample_interval;
        }
    }

    fn take_sample(&mut self, at: u64) {
        let revoker_dram = self.revoker_dram_now();
        let mut total_dram = 0;
        for core in 0..self.machine.num_cores() {
            total_dram += self.machine.mem().traffic(core).dram_transactions;
        }
        let vs = self.machine.vm_stats();
        self.sink.record_sample(Sample {
            at,
            rss_bytes: self.machine.resident_bytes(),
            allocated_bytes: self.heap.allocated_bytes(),
            quarantine_bytes: self.heap.quarantine_bytes(),
            app_dram: total_dram - revoker_dram,
            revoker_dram,
            faults: self.stats.faults,
            fault_cycles: self.stats.fault_cycles,
            blocked_cycles: self.stats.blocked_cycles,
            tlb_misses: vs.tlb_misses,
            epochs: self.revoker.stats().epochs,
        });
    }

    // ------------------------------------------------------------------
    // Capability plumbing
    // ------------------------------------------------------------------

    fn slot_auth(&self, obj: ObjId) -> Capability {
        self.root.set_addr(self.root.base() + (obj % self.cfg.max_objects) * CAP_SIZE)
    }

    /// Drops every instrument link entry whose slot address falls in
    /// `[base, base + len)`. Matches the physical tag-destruction range
    /// exactly: slots are 16-aligned, and `clear_tag_range` clears every
    /// granule overlapping the written bytes, so a slot at `base + 16*e`
    /// loses its tag iff `base + 16*e < base + len`.
    fn instrument_clear_range(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        let doomed: Vec<u64> =
            self.link_table.range(base..base.saturating_add(len)).map(|(&a, _)| a).collect();
        for addr in doomed {
            self.link_table.remove(&addr);
        }
    }

    /// Notes that `obj` just became a fresh object (`Alloc`/`Mmap` of
    /// `cap`): bumps its identity generation and forgets links stored in
    /// the reused storage (the allocator never scrubs, but the previous
    /// owner's links are not the new object's).
    fn instrument_new_object(&mut self, obj: ObjId, cap: Capability) {
        *self.obj_gen.entry(obj).or_insert(0) += 1;
        self.instrument_clear_range(cap.base(), cap.len());
    }

    /// Classifies and journals a pointer chase that dereferenced a link
    /// whose target is no longer the object it was stored for.
    fn instrument_stale_chase(&mut self, from: ObjId, slot: u64, to: ObjId, loaded: Capability) {
        let outcome = if !loaded.is_tagged() {
            StaleChaseOutcome::Revoked
        } else if self.revoker.bitmap().probe(loaded.base()) {
            StaleChaseOutcome::Quarantined
        } else {
            StaleChaseOutcome::Escaped
        };
        self.sink.record_event(self.wall, TelemetryEvent::StaleChase { from, slot, to, outcome });
    }

    /// Loads a capability through the load barrier, handling (and
    /// charging) generation faults.
    fn barrier_load(&mut self, auth: &Capability) -> Result<(Capability, u64), SimError> {
        let mut cycles = 0;
        loop {
            match self.machine.load_cap(self.cfg.app_core, auth) {
                Ok((cap, c)) => {
                    cycles += c;
                    let (cap, fc) = self.revoker.filter_loaded(&mut self.machine, self.cfg.app_core, cap);
                    cycles += fc;
                    // Stash in a register so epoch entry has hoards to scan.
                    self.reg_rr = (self.reg_rr + 1) % 24;
                    self.machine.regs_mut(self.app_thread).set(4 + self.reg_rr, cap);
                    return Ok((cap, cycles));
                }
                Err(VmFault::CapLoadGeneration { vaddr }) => {
                    let fc = self.revoker.handle_load_fault(&mut self.machine, self.cfg.app_core, vaddr);
                    cycles += fc;
                    self.stats.faults += 1;
                    self.stats.fault_cycles += fc;
                    self.maybe_release();
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn load_obj(&mut self, obj: ObjId) -> Result<(Capability, u64), SimError> {
        if !self.live.contains(&obj) {
            return Err(SimError::UnknownObj(obj));
        }
        let auth = self.slot_auth(obj);
        let (cap, cycles) = self.barrier_load(&auth)?;
        if !cap.is_tagged() {
            return Err(SimError::UnknownObj(obj));
        }
        Ok((cap, cycles))
    }

    // ------------------------------------------------------------------
    // Op implementations
    // ------------------------------------------------------------------

    fn op_alloc(&mut self, obj: ObjId, size: u64) -> Result<(), SimError> {
        if self.live.contains(&obj) {
            return Err(SimError::SlotBusy(obj));
        }
        if matches!(self.cfg.condition, Condition::Safe(_)) && self.heap.must_block(&self.revoker) {
            self.block_on_revocation();
        }
        let allocation = match self.heap.alloc(&mut self.machine, self.cfg.app_core, size) {
            Ok(a) => a,
            Err(AllocError::OutOfMemory) => {
                // Force quarantine turnover, then retry once.
                if matches!(self.cfg.condition, Condition::Safe(_)) {
                    if !self.revoker.is_revoking() {
                        self.heap.seal_for(&self.revoker, cheri_alloc::RevocationReason::OomForced);
                        self.start_revocation();
                    }
                    self.block_on_revocation();
                    self.heap
                        .alloc(&mut self.machine, self.cfg.app_core, size)
                        .map_err(|_| SimError::OutOfMemory)?
                } else {
                    return Err(SimError::OutOfMemory);
                }
            }
            Err(e) => return Err(e.into()),
        };
        let auth = self.slot_auth(obj);
        let c = self.machine.store_cap(self.cfg.app_core, &auth, allocation.cap)?;
        self.live.insert(obj);
        if self.telemetry_on {
            self.instrument_new_object(obj, allocation.cap);
        }
        self.advance(allocation.cycles + c + 20, true);
        Ok(())
    }

    fn op_free(&mut self, obj: ObjId) -> Result<(), SimError> {
        let (cap, c1) = self.load_obj(obj)?;
        let effect = match self.cfg.condition {
            Condition::Baseline => {
                let c = self.heap.free_immediate(&mut self.machine, self.cfg.app_core, cap)?;
                cheri_alloc::FreeEffect { cycles: c, trigger_revocation: false }
            }
            Condition::Safe(_) => self.heap.free(&mut self.machine, &mut self.revoker, self.cfg.app_core, cap)?,
        };
        let auth = self.slot_auth(obj);
        let c2 = self.machine.store_cap(self.cfg.app_core, &auth, Capability::null())?;
        self.live.remove(&obj);
        self.advance(c1 + effect.cycles + c2 + 20, true);
        if effect.trigger_revocation {
            self.start_revocation();
        }
        Ok(())
    }

    fn op_load(&mut self, obj: ObjId) -> Result<(), SimError> {
        let (_, c) = self.load_obj(obj)?;
        self.advance(c + 4, true);
        Ok(())
    }

    fn op_data(&mut self, obj: ObjId, len: u64, write: bool) -> Result<(), SimError> {
        let (cap, c1) = self.load_obj(obj)?;
        let len = len.clamp(1, cap.len().max(1));
        let c2 = if write {
            self.machine.write_data(self.cfg.app_core, &cap, len)?
        } else {
            self.machine.read_data(self.cfg.app_core, &cap, len)?
        };
        if write && self.telemetry_on {
            // The write destroyed the tags of every granule it overlapped.
            self.instrument_clear_range(cap.base(), len);
        }
        self.advance(c1 + c2 + len / 8, true);
        Ok(())
    }

    fn op_link(&mut self, from: ObjId, slot: u64, to: ObjId) -> Result<(), SimError> {
        let (fcap, c1) = self.load_obj(from)?;
        let (tcap, c2) = self.load_obj(to)?;
        let Some(auth) = cap_slot(&fcap, slot) else {
            self.advance(c1 + c2, true);
            return Ok(());
        };
        let c3 = self.machine.store_cap(self.cfg.app_core, &auth, tcap)?;
        if self.telemetry_on {
            let to_gen = self.obj_gen.get(&to).copied().unwrap_or(0);
            self.link_table.insert(auth.addr(), LinkEntry { to, to_gen });
        }
        self.advance(c1 + c2 + c3 + 8, true);
        Ok(())
    }

    fn op_chase(&mut self, from: ObjId, slot: u64) -> Result<(), SimError> {
        let (fcap, c1) = self.load_obj(from)?;
        let Some(auth) = cap_slot(&fcap, slot) else {
            self.advance(c1, true);
            return Ok(());
        };
        let (loaded, c2) = self.barrier_load(&auth)?;
        if self.telemetry_on {
            if let Some(entry) = self.link_table.get(&auth.addr()).copied() {
                let target_alive = self.live.contains(&entry.to)
                    && self.obj_gen.get(&entry.to).copied().unwrap_or(0) == entry.to_gen;
                if !target_alive {
                    self.instrument_stale_chase(from, slot, entry.to, loaded);
                }
            }
        }
        self.advance(c1 + c2 + 4, true);
        Ok(())
    }

    fn op_hoard(&mut self, obj: ObjId) -> Result<(), SimError> {
        let (cap, c) = self.load_obj(obj)?;
        let kind = match obj % 3 {
            0 => cornucopia::HoardKind::Kqueue,
            1 => cornucopia::HoardKind::Aio,
            _ => cornucopia::HoardKind::SavedContext,
        };
        self.revoker.hoards_mut().deposit(kind, cap);
        self.advance(c + 500, true); // syscall overhead
        Ok(())
    }
}

impl System {
    fn op_mmap(&mut self, obj: ObjId, len: u64) -> Result<(), SimError> {
        if self.live.contains(&obj) {
            return Err(SimError::SlotBusy(obj));
        }
        let cap = self
            .mmap_space
            .mmap(&mut self.machine, len)
            .map_err(|_| SimError::OutOfMemory)?;
        let auth = self.slot_auth(obj);
        let c = self.machine.store_cap(self.cfg.app_core, &auth, cap)?;
        self.live.insert(obj);
        if self.telemetry_on {
            self.instrument_new_object(obj, cap);
        }
        self.advance(c + 2_000, true); // mmap syscall
        Ok(())
    }

    fn op_munmap(&mut self, obj: ObjId) -> Result<(), SimError> {
        let (cap, c1) = self.load_obj(obj)?;
        let span = cap.len().div_ceil(cheri_mem::PAGE_SIZE) * cheri_mem::PAGE_SIZE;
        if matches!(self.cfg.condition, Condition::Baseline) {
            // No temporal safety: conventional munmap, instant reuse.
            self.mmap_space
                .munmap_immediate(&mut self.machine, cap.base(), span)
                .map_err(SimError::Vm)?;
            let auth = self.slot_auth(obj);
            let c2 = self.machine.store_cap(self.cfg.app_core, &auth, Capability::null())?;
            self.live.remove(&obj);
            self.advance(c1 + c2 + 2_000, true);
            return Ok(());
        }
        self.mmap_space
            .munmap(&mut self.machine, &mut self.revoker, self.cfg.app_core, cap.base(), span)
            .map_err(SimError::Vm)?;
        let auth = self.slot_auth(obj);
        let c2 = self.machine.store_cap(self.cfg.app_core, &auth, Capability::null())?;
        self.live.remove(&obj);
        self.advance(c1 + c2 + 2_500, true); // munmap syscall + guards
        // Reservation quarantine can itself demand a pass (§6.2) once
        // enough address space is parked behind guards.
        if matches!(self.cfg.condition, Condition::Safe(_))
            && !self.revoker.is_revoking()
            && self.mmap_space.quarantined_bytes() > self.cfg.min_quarantine * 4
        {
            self.heap
                .seal_for(&self.revoker, cheri_alloc::RevocationReason::ReservationQuarantine);
            self.start_revocation();
        }
        Ok(())
    }
}

/// The authority for 16-byte capability slot `slot` within `obj`, if the
/// object has room for capability slots.
fn cap_slot(obj: &Capability, slot: u64) -> Option<Capability> {
    let slots = obj.len() / CAP_SIZE;
    if slots == 0 {
        return None;
    }
    // Slot addresses must be 16-aligned: round the object base up.
    let first = obj.base().div_ceil(CAP_SIZE) * CAP_SIZE;
    if first + CAP_SIZE > obj.top() {
        return None;
    }
    let usable = (obj.top() - first) / CAP_SIZE;
    Some(obj.set_addr(first + (slot % usable) * CAP_SIZE))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn_ops(n: u64, size: u64) -> Vec<Op> {
        let mut ops = Vec::new();
        for i in 0..n {
            ops.push(Op::TxBegin { id: i });
            ops.push(Op::Alloc { obj: i % 64, size });
            ops.push(Op::WriteData { obj: i % 64, len: size });
            ops.push(Op::LinkPtr { from: i % 64, slot: 0, to: i % 64 });
            ops.push(Op::ChasePtr { from: i % 64, slot: 0 });
            ops.push(Op::Free { obj: i % 64 });
            ops.push(Op::TxEnd { id: i });
        }
        ops
    }

    fn run(condition: Condition, min_q: u64) -> RunStats {
        let cfg = SimConfig::builder().condition(condition).min_quarantine(min_q).build().unwrap();
        System::new(cfg).run(churn_ops(2000, 4096)).unwrap().into_stats()
    }

    #[test]
    fn all_conditions_complete_the_same_workload() {
        for c in [
            Condition::baseline(),
            Condition::paint_sync(),
            Condition::cherivoke(),
            Condition::cornucopia(),
            Condition::reloaded(),
        ] {
            let s = run(c, 256 << 10);
            assert_eq!(s.tx_latencies.len(), 2000, "{}", c.label());
            assert_eq!(s.allocs, 2001, "{}", c.label()); // + root table
            assert_eq!(s.frees, 2000, "{}", c.label());
        }
    }

    #[test]
    fn safe_strategies_actually_revoke() {
        for c in [Condition::cherivoke(), Condition::cornucopia(), Condition::reloaded()] {
            let s = run(c, 256 << 10);
            assert!(s.revocations > 0, "{} never revoked", c.label());
        }
    }

    #[test]
    fn revocation_makes_runs_slower_than_baseline() {
        let base = run(Condition::baseline(), 256 << 10);
        for c in [Condition::cherivoke(), Condition::cornucopia(), Condition::reloaded()] {
            let s = run(c, 256 << 10);
            assert!(
                s.wall_cycles > base.wall_cycles,
                "{} unexpectedly faster than baseline",
                c.label()
            );
        }
    }

    #[test]
    fn reloaded_pauses_are_far_shorter_than_cherivoke() {
        let cv = run(Condition::cherivoke(), 256 << 10);
        let rel = run(Condition::reloaded(), 256 << 10);
        let max_cv = cv.pauses.iter().copied().max().unwrap();
        let max_rel = rel.pauses.iter().copied().max().unwrap();
        assert!(
            max_rel * 3 < max_cv,
            "Reloaded max pause {max_rel} not well below CHERIvoke {max_cv}"
        );
    }

    #[test]
    fn reloaded_takes_load_faults_cornucopia_does_not() {
        let rel = run(Condition::reloaded(), 256 << 10);
        let corn = run(Condition::cornucopia(), 256 << 10);
        assert!(rel.faults > 0, "pointer churn under Reloaded must fault");
        assert_eq!(corn.faults, 0);
    }

    #[test]
    fn deterministic_given_same_ops() {
        let a = run(Condition::reloaded(), 256 << 10);
        let b = run(Condition::reloaded(), 256 << 10);
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.tx_latencies, b.tx_latencies);
        assert_eq!(a.total_dram(), b.total_dram());
    }

    #[test]
    fn multi_core_revoker_attributes_dram_per_core() {
        let cfg = SimConfig::builder()
            .policy(Condition::reloaded())
            .cores(4)
            .min_quarantine(256 << 10)
            .build()
            .unwrap();
        let s = System::new(cfg).run(churn_ops(2000, 4096)).unwrap();
        assert_eq!(s.revoker_cores.len(), 4);
        assert!(!s.revoker_cores.contains(&SimConfig::default().app_core()));
        let mut distinct = s.revoker_cores.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4, "revoker cores must be distinct");
        assert_eq!(s.revoker_dram, s.revoker_dram_per_core.iter().sum::<u64>());
        assert!(
            s.revoker_dram_per_core.iter().filter(|&&d| d > 0).count() >= 2,
            "sweep traffic should land on multiple cores, got {:?}",
            s.revoker_dram_per_core
        );
    }

    #[test]
    fn quarantine_inflates_peak_rss() {
        let base = run(Condition::baseline(), 256 << 10);
        let rel = run(Condition::reloaded(), 256 << 10);
        assert!(rel.peak_rss > base.peak_rss);
    }

    #[test]
    fn rate_schedule_spaces_transactions() {
        let interval = 2_000_000u64;
        let cfg = SimConfig::builder()
            .condition(Condition::baseline())
            .tx_interval(interval)
            .build()
            .unwrap();
        let s = System::new(cfg).run(churn_ops(50, 256)).unwrap();
        // Wall must cover the schedule span.
        assert!(s.wall_cycles >= interval * 49);
    }

    #[test]
    fn oom_recovers_via_forced_revocation() {
        // Tiny arena: the live set fits, but only with quarantine turnover.
        let cfg = SimConfig::builder()
            .condition(Condition::reloaded())
            .heap_len(4 << 20)
            .max_objects(1 << 10)
            .min_quarantine(64 << 10)
            .build()
            .unwrap();
        let s = System::new(cfg).run(churn_ops(3000, 8192)).unwrap();
        assert!(s.revocations > 0);
    }

    /// The full OOM forced-turnover path: with the policy floor raised to
    /// the arena size, the free path can never trigger, so the *only* way
    /// the workload completes is seal → start_revocation → block → retry.
    #[test]
    fn oom_forced_turnover_blocks_then_retry_succeeds() {
        let cfg = SimConfig::builder()
            .condition(Condition::reloaded())
            .heap_len(4 << 20)
            .max_objects(1 << 10)
            .min_quarantine(4 << 20)
            .record_events(true)
            .build()
            .unwrap();
        let report = System::new(cfg).run(churn_ops(3000, 8192)).unwrap();
        // Every retry succeeded (run returned Ok) and every pass was forced
        // by OOM, never by free-path policy.
        assert!(report.revocations > 0, "forced turnover never ran");
        assert!(report.blocked_allocs > 0, "blocking retries must be counted");
        assert!(report.blocked_cycles > 0, "blocked wall time must be attributed");
        // churn + root table, with failed first attempts re-counted on retry
        assert!(report.allocs >= 3001);
        assert_eq!(report.frees, 3000, "every churn object must still be freed");
        let reasons: Vec<cheri_alloc::RevocationReason> = report
            .telemetry()
            .events
            .iter()
            .filter_map(|e| match e.event {
                crate::telemetry::TelemetryEvent::Alloc(
                    cheri_alloc::AllocEvent::RevocationRequested { reason, .. },
                ) => Some(reason),
                _ => None,
            })
            .collect();
        assert!(!reasons.is_empty(), "forced seals must reach the journal");
        assert!(
            reasons.iter().all(|r| *r == cheri_alloc::RevocationReason::OomForced),
            "expected only oom_forced requests, got {reasons:?}"
        );
    }

    #[test]
    fn op_errors_are_reported() {
        let cfg = SimConfig::default();
        let mut sys = System::new(cfg);
        assert_eq!(sys.exec(Op::Free { obj: 7 }), Err(SimError::UnknownObj(7)));
        sys.exec(Op::Alloc { obj: 7, size: 64 }).unwrap();
        assert_eq!(sys.exec(Op::Alloc { obj: 7, size: 64 }), Err(SimError::SlotBusy(7)));
    }

    fn telemetry_cfg(condition: Condition) -> SimConfig {
        SimConfig::builder()
            .condition(condition)
            .min_quarantine(256 << 10)
            .sample_every(500_000)
            .record_events(true)
            .record_spans(true)
            .build()
            .unwrap()
    }

    #[test]
    fn telemetry_does_not_perturb_the_simulation() {
        let plain = run(Condition::reloaded(), 256 << 10);
        let traced = System::new(telemetry_cfg(Condition::reloaded()))
            .run(churn_ops(2000, 4096))
            .unwrap();
        assert_eq!(plain.wall_cycles, traced.wall_cycles);
        assert_eq!(plain.tx_latencies, traced.tx_latencies);
        assert_eq!(plain.total_dram(), traced.total_dram());
        assert_eq!(plain.pauses, traced.pauses);
    }

    #[test]
    fn null_sink_collects_nothing() {
        let cfg = SimConfig::builder().min_quarantine(256 << 10).build().unwrap();
        let report = System::new(cfg).run(churn_ops(500, 4096)).unwrap();
        assert!(report.telemetry().is_empty());
    }

    #[test]
    fn recorder_captures_events_spans_and_samples() {
        use crate::telemetry::{SpanKind, TelemetryEvent};
        let report = System::new(telemetry_cfg(Condition::reloaded()))
            .run(churn_ops(2000, 4096))
            .unwrap();
        let t = report.telemetry();
        assert!(!t.samples.is_empty(), "sampler never fired");
        assert!(t.samples.windows(2).all(|w| w[0].at < w[1].at), "samples not monotonic");
        assert!(t.samples.iter().any(|s| s.revoker_dram > 0));
        // The journal saw both revoker lifecycle and allocator policy events.
        let labels: Vec<&str> = t.events.iter().map(|e| e.event.label()).collect();
        assert!(labels.contains(&"epoch_begin"));
        assert!(labels.contains(&"epoch_end"));
        assert!(labels.contains(&"generation_flip"));
        assert!(labels.contains(&"revocation_requested"));
        assert!(labels.contains(&"batch_sealed"));
        // Spans: per-pass Epoch + StwPause + at least one concurrent sweep.
        let epochs = t.spans.iter().filter(|sp| sp.kind == SpanKind::Epoch).count() as u64;
        assert_eq!(epochs, report.revocations);
        assert_eq!(
            t.spans.iter().filter(|sp| sp.kind == SpanKind::StwPause).count(),
            report.pauses.len()
        );
        let sweep = t
            .spans
            .iter()
            .find(|sp| sp.kind == SpanKind::ConcurrentSweep)
            .expect("reloaded passes have a concurrent phase");
        assert!(sweep.core.is_some());
        assert!(sweep.busy_cycles > 0);
        assert!(sweep.start <= sweep.end);
        // Every span nests inside its epoch's window.
        for sp in &t.spans {
            assert!(sp.start <= sp.end, "inverted span {sp:?}");
        }
        // Events timestamped within the run.
        assert!(t.events.iter().all(|e| e.at <= report.wall_cycles));
        let _ = t.events.iter().map(|e| matches!(e.event, TelemetryEvent::Vm(_))).count();
    }

    #[test]
    fn report_json_is_byte_identical_across_runs() {
        let a = System::new(telemetry_cfg(Condition::reloaded()))
            .run(churn_ops(1000, 4096))
            .unwrap()
            .to_json();
        let b = System::new(telemetry_cfg(Condition::reloaded()))
            .run(churn_ops(1000, 4096))
            .unwrap()
            .to_json();
        assert_eq!(a, b);
        let v = crate::json::Json::parse(&a).unwrap();
        assert_eq!(v.get("condition").unwrap().as_str(), Some("Reloaded"));
        assert!(!v.get("spans").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn custom_sink_receives_telemetry() {
        use crate::config::TelemetryConfig;
        use crate::telemetry::Recorder;
        let cfg = SimConfig::builder().min_quarantine(256 << 10).build().unwrap();
        let sink = Box::new(Recorder::new(TelemetryConfig::full(1_000_000)));
        let report = System::with_sink(cfg, sink).run(churn_ops(1000, 4096)).unwrap();
        assert!(!report.telemetry().is_empty());
    }
}

//! Workload trace serialization.
//!
//! Op streams can be recorded to (and replayed from) a compact, line-based
//! text format, so workloads captured elsewhere — e.g. converted from a
//! real allocator trace — can be replayed against any revocation strategy,
//! and surrogate workloads can be archived alongside results.
//!
//! Format (`#cornucopia-trace v1` header, one op per line, `#` comments):
//!
//! ```text
//! A <obj> <size>      Alloc          F <obj>         Free
//! L <obj>             LoadObj        R <obj> <len>   ReadData
//! W <obj> <len>       WriteData      P <from> <slot> <to>  LinkPtr
//! C <from> <slot>     ChasePtr       X <cycles>      Compute
//! I <cycles>          ThinkIdle      H <obj>         SyscallHoard
//! B <id>              TxBegin        E <id>          TxEnd
//! M <obj> <len>       Mmap           U <obj>         Munmap
//! ```

use crate::ops::Op;
use std::fmt;
use std::io::{self, BufRead, Write};

/// The format header.
pub const TRACE_HEADER: &str = "#cornucopia-trace v1";

/// Trace parsing errors, with 1-based line numbers.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header line is missing or wrong.
    BadHeader,
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadHeader => write!(f, "missing `{TRACE_HEADER}` header"),
            TraceError::Parse { line, text } => write!(f, "trace parse error at line {line}: {text:?}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Serializes an op stream.
pub fn write_ops<W: Write>(ops: &[Op], mut w: W) -> io::Result<()> {
    writeln!(w, "{TRACE_HEADER}")?;
    for op in ops {
        match *op {
            Op::Alloc { obj, size } => writeln!(w, "A {obj} {size}")?,
            Op::Free { obj } => writeln!(w, "F {obj}")?,
            Op::LoadObj { obj } => writeln!(w, "L {obj}")?,
            Op::ReadData { obj, len } => writeln!(w, "R {obj} {len}")?,
            Op::WriteData { obj, len } => writeln!(w, "W {obj} {len}")?,
            Op::LinkPtr { from, slot, to } => writeln!(w, "P {from} {slot} {to}")?,
            Op::ChasePtr { from, slot } => writeln!(w, "C {from} {slot}")?,
            Op::Compute { cycles } => writeln!(w, "X {cycles}")?,
            Op::ThinkIdle { cycles } => writeln!(w, "I {cycles}")?,
            Op::SyscallHoard { obj } => writeln!(w, "H {obj}")?,
            Op::Mmap { obj, len } => writeln!(w, "M {obj} {len}")?,
            Op::Munmap { obj } => writeln!(w, "U {obj}")?,
            Op::TxBegin { id } => writeln!(w, "B {id}")?,
            Op::TxEnd { id } => writeln!(w, "E {id}")?,
        }
    }
    Ok(())
}

/// Deserializes an op stream.
pub fn read_ops<R: BufRead>(r: R) -> Result<Vec<Op>, TraceError> {
    let mut lines = r.lines();
    match lines.next() {
        Some(Ok(h)) if h.trim() == TRACE_HEADER => {}
        Some(Err(e)) => return Err(e.into()),
        _ => return Err(TraceError::BadHeader),
    }
    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let lineno = i + 2;
        let mut parts = text.split_ascii_whitespace();
        let bad = || TraceError::Parse { line: lineno, text: text.to_string() };
        let tag = parts.next().ok_or_else(bad)?;
        let mut num = || -> Result<u64, TraceError> {
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)
        };
        let op = match tag {
            "A" => Op::Alloc { obj: num()?, size: num()? },
            "F" => Op::Free { obj: num()? },
            "L" => Op::LoadObj { obj: num()? },
            "R" => Op::ReadData { obj: num()?, len: num()? },
            "W" => Op::WriteData { obj: num()?, len: num()? },
            "P" => Op::LinkPtr { from: num()?, slot: num()?, to: num()? },
            "C" => Op::ChasePtr { from: num()?, slot: num()? },
            "X" => Op::Compute { cycles: num()? },
            "I" => Op::ThinkIdle { cycles: num()? },
            "H" => Op::SyscallHoard { obj: num()? },
            "M" => Op::Mmap { obj: num()?, len: num()? },
            "U" => Op::Munmap { obj: num()? },
            "B" => Op::TxBegin { id: num()? },
            "E" => Op::TxEnd { id: num()? },
            _ => return Err(bad()),
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Writes a trace to `path`.
pub fn save_to_path(ops: &[Op], path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_ops(ops, io::BufWriter::new(f))
}

/// Reads a trace from `path`.
pub fn load_from_path(path: impl AsRef<std::path::Path>) -> Result<Vec<Op>, TraceError> {
    let f = std::fs::File::open(path)?;
    read_ops(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Op> {
        vec![
            Op::TxBegin { id: 0 },
            Op::Alloc { obj: 3, size: 4096 },
            Op::WriteData { obj: 3, len: 128 },
            Op::LinkPtr { from: 3, slot: 7, to: 3 },
            Op::ChasePtr { from: 3, slot: 7 },
            Op::ReadData { obj: 3, len: 64 },
            Op::LoadObj { obj: 3 },
            Op::Compute { cycles: 1000 },
            Op::ThinkIdle { cycles: 500 },
            Op::SyscallHoard { obj: 3 },
            Op::Mmap { obj: 9, len: 8192 },
            Op::Munmap { obj: 9 },
            Op::Free { obj: 3 },
            Op::TxEnd { id: 0 },
        ]
    }

    #[test]
    fn roundtrip_preserves_ops() {
        let ops = sample();
        let mut buf = Vec::new();
        write_ops(&ops, &mut buf).unwrap();
        let back = read_ops(buf.as_slice()).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{TRACE_HEADER}\n# hello\n\nA 1 64\n  \nF 1\n");
        let ops = read_ops(text.as_bytes()).unwrap();
        assert_eq!(ops, vec![Op::Alloc { obj: 1, size: 64 }, Op::Free { obj: 1 }]);
    }

    #[test]
    fn missing_header_is_rejected() {
        assert!(matches!(read_ops("A 1 64\n".as_bytes()), Err(TraceError::BadHeader)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = format!("{TRACE_HEADER}\nA 1 64\nQ nonsense\n");
        match read_ops(text.as_bytes()) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let text = format!("{TRACE_HEADER}\nA 1\n"); // missing size
        assert!(matches!(read_ops(text.as_bytes()), Err(TraceError::Parse { line: 2, .. })));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cornucopia-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        save_to_path(&sample(), &path).unwrap();
        assert_eq!(load_from_path(&path).unwrap(), sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_equals_original_run() {
        use crate::{Condition, SimConfig, System};
        let ops = sample();
        let mut buf = Vec::new();
        write_ops(&ops, &mut buf).unwrap();
        let replayed = read_ops(buf.as_slice()).unwrap();
        let cfg = SimConfig { condition: Condition::reloaded(), ..SimConfig::default() };
        let a = System::new(cfg.clone()).run(ops).unwrap();
        let b = System::new(cfg).run(replayed).unwrap();
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.total_dram(), b.total_dram());
    }
}

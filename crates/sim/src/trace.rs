//! Workload trace serialization.
//!
//! Op streams can be recorded to (and replayed from) a compact, line-based
//! text format, so workloads captured elsewhere — e.g. converted from a
//! real allocator trace — can be replayed against any revocation strategy,
//! and surrogate workloads can be archived alongside results.
//!
//! Format (`#cornucopia-trace v2` header, one op per line, `#` comments):
//!
//! ```text
//! A <obj> <size>      Alloc          F <obj>         Free
//! L <obj>             LoadObj        R <obj> <len>   ReadData
//! W <obj> <len>       WriteData      P <from> <slot> <to>  LinkPtr
//! C <from> <slot>     ChasePtr       X <cycles>      Compute
//! I <cycles>          ThinkIdle      H <obj>         SyscallHoard
//! B <id>              TxBegin        E <id>          TxEnd
//! M <obj> <len>       Mmap           U <obj>         Munmap
//! ```
//!
//! **v2** additionally carries metadata lines of the form `#!key value`
//! immediately after the header (sorted by key on write, so equal traces
//! serialize identically) — provenance such as the generating workload,
//! seed, or scale travels with the ops. The reader still accepts v1
//! traces, where `#!` lines are plain comments and the metadata comes
//! back empty.

use crate::ops::Op;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Write};

/// The current format header.
pub const TRACE_HEADER: &str = "#cornucopia-trace v2";

/// The legacy v1 header (no metadata lines); still readable.
pub const TRACE_HEADER_V1: &str = "#cornucopia-trace v1";

/// Trace metadata: ordered key → value pairs carried by v2 traces. Keys
/// must be nonempty and free of whitespace; values must be single-line.
pub type TraceMeta = BTreeMap<String, String>;

/// Trace parsing errors, with 1-based line numbers.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header line is missing or wrong.
    BadHeader,
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A metadata key or value is unserializable (whitespace in the key,
    /// newline in the value, or an empty key).
    BadMeta {
        /// The offending key.
        key: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadHeader => write!(f, "missing `{TRACE_HEADER}` header"),
            TraceError::Parse { line, text } => write!(f, "trace parse error at line {line}: {text:?}"),
            TraceError::BadMeta { key } => write!(f, "unserializable trace metadata key {key:?}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Serializes an op stream with no metadata (v2 format).
pub fn write_ops<W: Write>(ops: &[Op], w: W) -> io::Result<()> {
    match write_trace(ops, &TraceMeta::new(), w) {
        Ok(()) => Ok(()),
        Err(TraceError::Io(e)) => Err(e),
        Err(other) => Err(io::Error::other(other.to_string())),
    }
}

/// Serializes an op stream plus metadata (v2 format: header, `#!key
/// value` lines in key order, then one op per line).
pub fn write_trace<W: Write>(ops: &[Op], meta: &TraceMeta, mut w: W) -> Result<(), TraceError> {
    writeln!(w, "{TRACE_HEADER}").map_err(TraceError::Io)?;
    for (key, value) in meta {
        if key.is_empty()
            || key.chars().any(char::is_whitespace)
            || value.contains('\n')
            || value.contains('\r')
        {
            return Err(TraceError::BadMeta { key: key.clone() });
        }
        writeln!(w, "#!{key} {value}").map_err(TraceError::Io)?;
    }
    write_op_lines(ops, w).map_err(TraceError::Io)
}

fn write_op_lines<W: Write>(ops: &[Op], mut w: W) -> io::Result<()> {
    for op in ops {
        match *op {
            Op::Alloc { obj, size } => writeln!(w, "A {obj} {size}")?,
            Op::Free { obj } => writeln!(w, "F {obj}")?,
            Op::LoadObj { obj } => writeln!(w, "L {obj}")?,
            Op::ReadData { obj, len } => writeln!(w, "R {obj} {len}")?,
            Op::WriteData { obj, len } => writeln!(w, "W {obj} {len}")?,
            Op::LinkPtr { from, slot, to } => writeln!(w, "P {from} {slot} {to}")?,
            Op::ChasePtr { from, slot } => writeln!(w, "C {from} {slot}")?,
            Op::Compute { cycles } => writeln!(w, "X {cycles}")?,
            Op::ThinkIdle { cycles } => writeln!(w, "I {cycles}")?,
            Op::SyscallHoard { obj } => writeln!(w, "H {obj}")?,
            Op::Mmap { obj, len } => writeln!(w, "M {obj} {len}")?,
            Op::Munmap { obj } => writeln!(w, "U {obj}")?,
            Op::TxBegin { id } => writeln!(w, "B {id}")?,
            Op::TxEnd { id } => writeln!(w, "E {id}")?,
        }
    }
    Ok(())
}

/// Deserializes an op stream, dropping any metadata.
pub fn read_ops<R: BufRead>(r: R) -> Result<Vec<Op>, TraceError> {
    read_trace(r).map(|(ops, _)| ops)
}

/// Deserializes an op stream plus its metadata. Accepts v2 and v1
/// headers; in v1 input, `#!` lines are plain comments and the returned
/// metadata is empty.
pub fn read_trace<R: BufRead>(r: R) -> Result<(Vec<Op>, TraceMeta), TraceError> {
    let mut lines = r.lines();
    let v2 = match lines.next() {
        Some(Ok(h)) if h.trim() == TRACE_HEADER => true,
        Some(Ok(h)) if h.trim() == TRACE_HEADER_V1 => false,
        Some(Err(e)) => return Err(e.into()),
        _ => return Err(TraceError::BadHeader),
    };
    let mut meta = TraceMeta::new();
    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let text = line.trim();
        if v2 && text.starts_with("#!") {
            let body = &text[2..];
            let lineno = i + 2;
            let (key, value) = body
                .split_once(char::is_whitespace)
                .map_or((body, ""), |(k, v)| (k, v.trim_start()));
            if key.is_empty() {
                return Err(TraceError::Parse { line: lineno, text: text.to_string() });
            }
            meta.insert(key.to_string(), value.to_string());
            continue;
        }
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let lineno = i + 2;
        let mut parts = text.split_ascii_whitespace();
        let bad = || TraceError::Parse { line: lineno, text: text.to_string() };
        let tag = parts.next().ok_or_else(bad)?;
        let mut num = || -> Result<u64, TraceError> {
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)
        };
        let op = match tag {
            "A" => Op::Alloc { obj: num()?, size: num()? },
            "F" => Op::Free { obj: num()? },
            "L" => Op::LoadObj { obj: num()? },
            "R" => Op::ReadData { obj: num()?, len: num()? },
            "W" => Op::WriteData { obj: num()?, len: num()? },
            "P" => Op::LinkPtr { from: num()?, slot: num()?, to: num()? },
            "C" => Op::ChasePtr { from: num()?, slot: num()? },
            "X" => Op::Compute { cycles: num()? },
            "I" => Op::ThinkIdle { cycles: num()? },
            "H" => Op::SyscallHoard { obj: num()? },
            "M" => Op::Mmap { obj: num()?, len: num()? },
            "U" => Op::Munmap { obj: num()? },
            "B" => Op::TxBegin { id: num()? },
            "E" => Op::TxEnd { id: num()? },
            _ => return Err(bad()),
        };
        ops.push(op);
    }
    Ok((ops, meta))
}

/// Writes a metadata-free trace to `path`.
pub fn save_to_path(ops: &[Op], path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_ops(ops, io::BufWriter::new(f))
}

/// Writes a trace with metadata to `path`.
pub fn save_trace_to_path(
    ops: &[Op],
    meta: &TraceMeta,
    path: impl AsRef<std::path::Path>,
) -> Result<(), TraceError> {
    let f = std::fs::File::create(path).map_err(TraceError::Io)?;
    write_trace(ops, meta, io::BufWriter::new(f))
}

/// Reads a trace from `path`, dropping metadata.
pub fn load_from_path(path: impl AsRef<std::path::Path>) -> Result<Vec<Op>, TraceError> {
    let f = std::fs::File::open(path)?;
    read_ops(io::BufReader::new(f))
}

/// Reads a trace plus metadata from `path`.
pub fn load_trace_from_path(
    path: impl AsRef<std::path::Path>,
) -> Result<(Vec<Op>, TraceMeta), TraceError> {
    let f = std::fs::File::open(path)?;
    read_trace(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Op> {
        vec![
            Op::TxBegin { id: 0 },
            Op::Alloc { obj: 3, size: 4096 },
            Op::WriteData { obj: 3, len: 128 },
            Op::LinkPtr { from: 3, slot: 7, to: 3 },
            Op::ChasePtr { from: 3, slot: 7 },
            Op::ReadData { obj: 3, len: 64 },
            Op::LoadObj { obj: 3 },
            Op::Compute { cycles: 1000 },
            Op::ThinkIdle { cycles: 500 },
            Op::SyscallHoard { obj: 3 },
            Op::Mmap { obj: 9, len: 8192 },
            Op::Munmap { obj: 9 },
            Op::Free { obj: 3 },
            Op::TxEnd { id: 0 },
        ]
    }

    #[test]
    fn roundtrip_preserves_ops() {
        let ops = sample();
        let mut buf = Vec::new();
        write_ops(&ops, &mut buf).unwrap();
        let back = read_ops(buf.as_slice()).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{TRACE_HEADER}\n# hello\n\nA 1 64\n  \nF 1\n");
        let ops = read_ops(text.as_bytes()).unwrap();
        assert_eq!(ops, vec![Op::Alloc { obj: 1, size: 64 }, Op::Free { obj: 1 }]);
    }

    #[test]
    fn missing_header_is_rejected() {
        assert!(matches!(read_ops("A 1 64\n".as_bytes()), Err(TraceError::BadHeader)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = format!("{TRACE_HEADER}\nA 1 64\nQ nonsense\n");
        match read_ops(text.as_bytes()) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let text = format!("{TRACE_HEADER}\nA 1\n"); // missing size
        assert!(matches!(read_ops(text.as_bytes()), Err(TraceError::Parse { line: 2, .. })));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cornucopia-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        save_to_path(&sample(), &path).unwrap();
        assert_eq!(load_from_path(&path).unwrap(), sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_equals_original_run() {
        use crate::{Condition, SimConfig, System};
        let ops = sample();
        let mut buf = Vec::new();
        write_ops(&ops, &mut buf).unwrap();
        let replayed = read_ops(buf.as_slice()).unwrap();
        let cfg = SimConfig::builder().condition(Condition::reloaded()).build().unwrap();
        let a = System::new(cfg.clone()).run(ops).unwrap();
        let b = System::new(cfg).run(replayed).unwrap();
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.total_dram(), b.total_dram());
    }

    fn sample_meta() -> TraceMeta {
        let mut meta = TraceMeta::new();
        meta.insert("workload".to_string(), "gobmk trevord".to_string());
        meta.insert("seed".to_string(), "1234".to_string());
        meta.insert("scale".to_string(), String::new());
        meta
    }

    #[test]
    fn v2_roundtrip_preserves_ops_and_meta() {
        let ops = sample();
        let meta = sample_meta();
        let mut buf = Vec::new();
        write_trace(&ops, &meta, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with(TRACE_HEADER));
        assert!(text.contains("#!seed 1234"));
        let (back_ops, back_meta) = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back_ops, ops);
        assert_eq!(back_meta, meta);
    }

    #[test]
    fn meta_lines_serialize_in_key_order() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_trace(&sample(), &sample_meta(), &mut a).unwrap();
        write_trace(&sample(), &sample_meta(), &mut b).unwrap();
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        let keys: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("#!"))
            .map(|l| l[2..].split_whitespace().next().unwrap())
            .collect();
        assert_eq!(keys, vec!["scale", "seed", "workload"]);
    }

    #[test]
    fn v1_traces_still_read_with_empty_meta() {
        let text = format!("{TRACE_HEADER_V1}
#!not meta in v1
A 1 64
F 1
");
        let (ops, meta) = read_trace(text.as_bytes()).unwrap();
        assert_eq!(ops, vec![Op::Alloc { obj: 1, size: 64 }, Op::Free { obj: 1 }]);
        assert!(meta.is_empty());
    }

    #[test]
    fn bad_meta_is_rejected_on_write() {
        let ops = sample();
        let mut meta = TraceMeta::new();
        meta.insert("has space".to_string(), "v".to_string());
        assert!(matches!(
            write_trace(&ops, &meta, Vec::new()),
            Err(TraceError::BadMeta { .. })
        ));
        let mut meta = TraceMeta::new();
        meta.insert("k".to_string(), "line
break".to_string());
        assert!(matches!(
            write_trace(&ops, &meta, Vec::new()),
            Err(TraceError::BadMeta { .. })
        ));
    }

    #[test]
    fn v2_meta_file_roundtrip() {
        let dir = std::env::temp_dir().join("cornucopia-trace-v2-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t2.trace");
        save_trace_to_path(&sample(), &sample_meta(), &path).unwrap();
        let (ops, meta) = load_trace_from_path(&path).unwrap();
        assert_eq!(ops, sample());
        assert_eq!(meta, sample_meta());
        std::fs::remove_file(&path).ok();
    }
}

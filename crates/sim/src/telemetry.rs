//! Telemetry: a typed span/event journal plus a counter time-series
//! sampler, behind a sink trait whose default implementation is free.
//!
//! The simulated components cannot see the wall clock — the [`crate::System`]
//! owns time — so each component (the VM layer, the revoker, the
//! allocator shim) keeps a cheap, gated internal event log
//! ([`cheri_vm::VmEvent`], [`cornucopia::RevokerEvent`],
//! [`cheri_alloc::AllocEvent`]). The system drains those logs as it
//! executes, stamps them with the current wall cycle, and forwards them
//! into a [`TelemetrySink`]:
//!
//! * [`NullSink`] — the default. Component logging stays disabled, every
//!   hook is a no-op, and runs are bit-identical to a build without
//!   telemetry (`tests/golden_stats.rs` enforces this).
//! * [`Recorder`] — ring-buffered storage for the event journal, the
//!   revocation phase/pause [`Span`]s (Figure 9's raw material), and the
//!   sampled counter [`Sample`] series (Figures 4/6 analogues), collected
//!   into a [`TelemetryData`] at the end of the run.
//!
//! Everything here is deterministic: timestamps are simulated cycles and
//! ring evictions depend only on the op stream.

use crate::config::TelemetryConfig;
use crate::ops::ObjId;
use cheri_alloc::AllocEvent;
use cheri_vm::VmEvent;
use cornucopia::RevokerEvent;
use std::collections::VecDeque;
use std::fmt;

/// How a dynamically observed stale pointer chase resolved — what the
/// application actually got back when it loaded a pointer whose target
/// had been freed (the event a static analyzer predicts; see
/// [`TelemetryEvent::StaleChase`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleChaseOutcome {
    /// The loaded capability came back untagged: revocation (or the
    /// Reloaded load barrier) already killed it. Fail-stop behaviour.
    Revoked,
    /// The capability is still tagged but its target memory is painted in
    /// the revocation bitmap: the storage is quarantined and cannot have
    /// been reused, so the dangling pointer is still harmless.
    Quarantined,
    /// The capability is tagged and its target is neither live nor
    /// painted: the dangling pointer escaped — storage may already be
    /// reused. Only strategies without
    /// [`provides_safety`](cornucopia::Strategy::provides_safety) (and
    /// the baseline's immediate free) produce this.
    Escaped,
}

/// A typed event from any simulated component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// MMU / TLB / generation-flip activity.
    Vm(VmEvent),
    /// Revocation pass lifecycle and fault handling.
    Revoker(RevokerEvent),
    /// Quarantine policy activity.
    Alloc(AllocEvent),
    /// A `ChasePtr` loaded a pointer whose target object had been freed
    /// (and not since legitimately re-linked). Emitted by the system's
    /// zero-cost dangling-pointer instrument — the dynamic half of the
    /// static-analysis cross-check oracle.
    StaleChase {
        /// Object the pointer was loaded from.
        from: ObjId,
        /// The `ChasePtr` slot operand (pre-aliasing).
        slot: u64,
        /// The freed object the stored pointer referred to.
        to: ObjId,
        /// What the load actually produced.
        outcome: StaleChaseOutcome,
    },
}

impl TelemetryEvent {
    /// A stable snake_case label for export.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TelemetryEvent::Vm(VmEvent::TlbShootdown { .. }) => "tlb_shootdown",
            TelemetryEvent::Vm(VmEvent::GenerationFlip { .. }) => "generation_flip",
            TelemetryEvent::Vm(VmEvent::LoadGenerationFault { .. }) => "load_generation_fault",
            TelemetryEvent::Vm(_) => "vm_other",
            TelemetryEvent::Revoker(RevokerEvent::EpochBegin { .. }) => "epoch_begin",
            TelemetryEvent::Revoker(RevokerEvent::EpochEnd { .. }) => "epoch_end",
            TelemetryEvent::Revoker(RevokerEvent::LoadFaultHandled { .. }) => "load_fault_handled",
            TelemetryEvent::Revoker(_) => "revoker_other",
            TelemetryEvent::Alloc(AllocEvent::RevocationRequested { .. }) => "revocation_requested",
            TelemetryEvent::Alloc(AllocEvent::BatchSealed { .. }) => "batch_sealed",
            TelemetryEvent::Alloc(AllocEvent::BatchReleased { .. }) => "batch_released",
            TelemetryEvent::Alloc(_) => "alloc_other",
            TelemetryEvent::StaleChase { outcome: StaleChaseOutcome::Revoked, .. } => {
                "stale_chase_revoked"
            }
            TelemetryEvent::StaleChase { outcome: StaleChaseOutcome::Quarantined, .. } => {
                "stale_chase_quarantined"
            }
            TelemetryEvent::StaleChase { outcome: StaleChaseOutcome::Escaped, .. } => {
                "stale_chase_escaped"
            }
        }
    }
}

/// An event stamped with the wall cycle at which the system drained it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Wall cycle.
    pub at: u64,
    /// The event.
    pub event: TelemetryEvent,
}

/// What a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A stop-the-world pause (epoch entry, CHERIvoke/Cornucopia sweep,
    /// or a final re-sweep). Start/end bound the world-stopped window.
    StwPause,
    /// One revoker core's share of the concurrent sweep; `busy_cycles` is
    /// that core's CPU time inside the wall window.
    ConcurrentSweep,
    /// A whole revocation pass, entry pause through completion.
    Epoch,
    /// The application blocked on an in-flight pass (quarantine
    /// hard-full, §5.3).
    BlockedAlloc,
}

impl SpanKind {
    /// A stable snake_case label for export.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::StwPause => "stw_pause",
            SpanKind::ConcurrentSweep => "concurrent_sweep",
            SpanKind::Epoch => "epoch",
            SpanKind::BlockedAlloc => "blocked_alloc",
        }
    }
}

/// A wall-clock interval attributed to a revocation phase or pause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the interval covers.
    pub kind: SpanKind,
    /// Epoch counter value the interval belongs to.
    pub epoch: u64,
    /// Wall cycle the interval began.
    pub start: u64,
    /// Wall cycle the interval ended.
    pub end: u64,
    /// The core doing the work, when attributable to one core.
    pub core: Option<usize>,
    /// CPU cycles actually consumed inside the interval (≤ `end - start`
    /// for time-sliced work; equal for STW pauses).
    pub busy_cycles: u64,
}

/// One snapshot of the run's counters, taken every
/// [`TelemetryConfig::sample_every`] cycles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// The sample's scheduled wall cycle.
    pub at: u64,
    /// Resident set in bytes.
    pub rss_bytes: u64,
    /// Live heap bytes.
    pub allocated_bytes: u64,
    /// Quarantined bytes (open + sealed).
    pub quarantine_bytes: u64,
    /// Cumulative DRAM transactions from application cores.
    pub app_dram: u64,
    /// Cumulative DRAM transactions from revoker cores.
    pub revoker_dram: u64,
    /// Cumulative load-barrier faults taken.
    pub faults: u64,
    /// Cumulative cycles spent handling those faults.
    pub fault_cycles: u64,
    /// Cumulative cycles the application spent blocked on a pass.
    pub blocked_cycles: u64,
    /// Cumulative TLB misses (all cores).
    pub tlb_misses: u64,
    /// Completed revocation epochs.
    pub epochs: u64,
}

impl Sample {
    /// Column names, in the order [`Sample::values`] returns them.
    pub const COLUMNS: [&'static str; 11] = [
        "at",
        "rss_bytes",
        "allocated_bytes",
        "quarantine_bytes",
        "app_dram",
        "revoker_dram",
        "faults",
        "fault_cycles",
        "blocked_cycles",
        "tlb_misses",
        "epochs",
    ];

    /// The row, aligned with [`Sample::COLUMNS`].
    #[must_use]
    pub fn values(&self) -> [u64; 11] {
        [
            self.at,
            self.rss_bytes,
            self.allocated_bytes,
            self.quarantine_bytes,
            self.app_dram,
            self.revoker_dram,
            self.faults,
            self.fault_cycles,
            self.blocked_cycles,
            self.tlb_misses,
            self.epochs,
        ]
    }
}

/// Everything a sink collected over a run.
#[derive(Debug, Default, Clone)]
pub struct TelemetryData {
    /// The stamped event journal, in drain order.
    pub events: Vec<TimedEvent>,
    /// Phase / pause spans, in emission order.
    pub spans: Vec<Span>,
    /// The sampled counter series, oldest first.
    pub samples: Vec<Sample>,
    /// Events evicted from the ring because it was full.
    pub dropped_events: u64,
    /// Samples evicted from the ring because it was full.
    pub dropped_samples: u64,
}

impl TelemetryData {
    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.spans.is_empty() && self.samples.is_empty()
    }
}

/// Where the system delivers telemetry. Implemented by [`NullSink`]
/// (default, free) and [`Recorder`]; external drivers can implement it to
/// stream events elsewhere via [`crate::System::with_sink`].
pub trait TelemetrySink: fmt::Debug {
    /// Whether the system should bother collecting anything at all. When
    /// `false` the system never enables component event logging, never
    /// drains, and never samples.
    fn is_enabled(&self) -> bool;

    /// Sampling period in cycles, if counter sampling is wanted.
    fn sample_interval(&self) -> Option<u64>;

    /// Delivers one stamped event.
    fn record_event(&mut self, at: u64, event: TelemetryEvent);

    /// Delivers one phase/pause span.
    fn record_span(&mut self, span: Span);

    /// Delivers one counter snapshot.
    fn record_sample(&mut self, sample: Sample);

    /// Consumes the sink, yielding whatever it collected.
    fn into_data(self: Box<Self>) -> TelemetryData;
}

/// The zero-overhead default sink: everything is a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn sample_interval(&self) -> Option<u64> {
        None
    }

    fn record_event(&mut self, _at: u64, _event: TelemetryEvent) {}

    fn record_span(&mut self, _span: Span) {}

    fn record_sample(&mut self, _sample: Sample) {}

    fn into_data(self: Box<Self>) -> TelemetryData {
        TelemetryData::default()
    }
}

/// The standard in-memory sink: ring-buffered journal and series per the
/// run's [`TelemetryConfig`].
#[derive(Debug)]
pub struct Recorder {
    cfg: TelemetryConfig,
    events: VecDeque<TimedEvent>,
    dropped_events: u64,
    spans: Vec<Span>,
    samples: VecDeque<Sample>,
    dropped_samples: u64,
}

impl Recorder {
    /// A recorder honouring `cfg`'s capacities and switches.
    #[must_use]
    pub fn new(cfg: TelemetryConfig) -> Self {
        Recorder {
            cfg,
            events: VecDeque::new(),
            dropped_events: 0,
            spans: Vec::new(),
            samples: VecDeque::new(),
            dropped_samples: 0,
        }
    }
}

impl TelemetrySink for Recorder {
    fn is_enabled(&self) -> bool {
        self.cfg.enabled()
    }

    fn sample_interval(&self) -> Option<u64> {
        self.cfg.sample_every
    }

    fn record_event(&mut self, at: u64, event: TelemetryEvent) {
        if !self.cfg.record_events {
            return;
        }
        if self.events.len() == self.cfg.event_capacity {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(TimedEvent { at, event });
    }

    fn record_span(&mut self, span: Span) {
        if self.cfg.record_spans {
            self.spans.push(span);
        }
    }

    fn record_sample(&mut self, sample: Sample) {
        if self.samples.len() == self.cfg.series_capacity {
            self.samples.pop_front();
            self.dropped_samples += 1;
        }
        self.samples.push_back(sample);
    }

    fn into_data(self: Box<Self>) -> TelemetryData {
        TelemetryData {
            events: self.events.into_iter().collect(),
            spans: self.spans,
            samples: self.samples.into_iter().collect(),
            dropped_events: self.dropped_events,
            dropped_samples: self.dropped_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64) -> (u64, TelemetryEvent) {
        (at, TelemetryEvent::Revoker(RevokerEvent::EpochBegin { epoch: at }))
    }

    #[test]
    fn null_sink_is_disabled_and_empty() {
        let mut sink = NullSink;
        assert!(!sink.is_enabled());
        assert_eq!(sink.sample_interval(), None);
        let (at, event) = ev(1);
        sink.record_event(at, event);
        sink.record_sample(Sample::default());
        assert!(Box::new(sink).into_data().is_empty());
    }

    #[test]
    fn recorder_respects_switches() {
        let mut sink = Recorder::new(TelemetryConfig::sampled(100));
        assert!(sink.is_enabled());
        assert_eq!(sink.sample_interval(), Some(100));
        let (at, event) = ev(5);
        sink.record_event(at, event); // record_events is off
        sink.record_span(Span {
            kind: SpanKind::Epoch,
            epoch: 1,
            start: 0,
            end: 10,
            core: None,
            busy_cycles: 10,
        }); // record_spans is off
        sink.record_sample(Sample { at: 100, ..Sample::default() });
        let data = Box::new(sink).into_data();
        assert!(data.events.is_empty());
        assert!(data.spans.is_empty());
        assert_eq!(data.samples.len(), 1);
    }

    #[test]
    fn rings_evict_oldest_and_count_drops() {
        let mut cfg = TelemetryConfig::full(10);
        cfg.event_capacity = 2;
        cfg.series_capacity = 2;
        let mut sink = Recorder::new(cfg);
        for i in 0..5 {
            let (at, event) = ev(i);
            sink.record_event(at, event);
            sink.record_sample(Sample { at: i, ..Sample::default() });
        }
        let data = Box::new(sink).into_data();
        assert_eq!(data.dropped_events, 3);
        assert_eq!(data.dropped_samples, 3);
        assert_eq!(data.events.iter().map(|e| e.at).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(data.samples.iter().map(|s| s.at).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn sample_row_aligns_with_columns() {
        let s = Sample { at: 1, rss_bytes: 2, epochs: 11, ..Sample::default() };
        let vals = s.values();
        assert_eq!(vals.len(), Sample::COLUMNS.len());
        assert_eq!(vals[0], 1);
        assert_eq!(vals[1], 2);
        assert_eq!(vals[10], 11);
    }

    #[test]
    fn event_labels_are_stable() {
        let (_, event) = ev(0);
        assert_eq!(event.label(), "epoch_begin");
        assert_eq!(
            TelemetryEvent::Vm(VmEvent::TlbShootdown { page: 0 }).label(),
            "tlb_shootdown"
        );
        assert_eq!(
            TelemetryEvent::Alloc(AllocEvent::BatchSealed { bytes: 1, epoch: 1 }).label(),
            "batch_sealed"
        );
        for (outcome, label) in [
            (StaleChaseOutcome::Revoked, "stale_chase_revoked"),
            (StaleChaseOutcome::Quarantined, "stale_chase_quarantined"),
            (StaleChaseOutcome::Escaped, "stale_chase_escaped"),
        ] {
            assert_eq!(
                TelemetryEvent::StaleChase { from: 1, slot: 2, to: 3, outcome }.label(),
                label
            );
        }
    }
}

//! The unified run artifact: statistics plus telemetry, exportable as
//! deterministic JSON and CSV.
//!
//! [`RunReport`] is what [`crate::System::run`] returns. It wraps the
//! familiar [`RunStats`] (and derefs to it, so `report.wall_cycles` and
//! `report.latency_summary()` keep working at every old call site)
//! together with whatever the run's [`TelemetrySink`](crate::telemetry::TelemetrySink)
//! collected. [`RunReport::to_json`] emits a compact, integer-only,
//! key-ordered document — the same run always produces byte-identical
//! text — with enough structure to plot the paper's Figure 4/6/9
//! analogues: the sampled counter series, the STW pauses, and the
//! per-phase spans.

use crate::json::Json;
use crate::stats::RunStats;
use crate::telemetry::{Sample, Span, TelemetryData, TelemetryEvent};
use cheri_alloc::AllocEvent;
use cheri_vm::VmEvent;
use cornucopia::RevokerEvent;
use std::ops::Deref;

/// Schema version of [`RunReport::to_json`].
pub const REPORT_VERSION: u64 = 1;

/// Statistics + telemetry from one completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    condition: &'static str,
    stats: RunStats,
    telemetry: TelemetryData,
}

impl RunReport {
    pub(crate) fn new(condition: &'static str, stats: RunStats, telemetry: TelemetryData) -> Self {
        RunReport { condition, stats, telemetry }
    }

    /// The measured condition's label (paper figure legend).
    #[must_use]
    pub fn condition(&self) -> &'static str {
        self.condition
    }

    /// The run statistics.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Whatever telemetry the run's sink collected (empty under the
    /// default [`NullSink`](crate::telemetry::NullSink)).
    #[must_use]
    pub fn telemetry(&self) -> &TelemetryData {
        &self.telemetry
    }

    /// Unwraps the statistics, discarding telemetry.
    #[must_use]
    pub fn into_stats(self) -> RunStats {
        self.stats
    }

    /// Renders the deterministic JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The report as a [`Json`] tree (for callers embedding it).
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        let s = &self.stats;
        let lat = s.latency_summary();
        let latency = Json::Obj(vec![
            ("count".into(), lat.count.into()),
            ("p50".into(), lat.p50.into()),
            ("p90".into(), lat.p90.into()),
            ("p95".into(), lat.p95.into()),
            ("p99".into(), lat.p99.into()),
            ("p999".into(), lat.p999.into()),
            ("max".into(), lat.max.into()),
            ("mean".into(), lat.mean.into()),
        ]);
        let stats = Json::Obj(vec![
            ("wall_cycles".into(), s.wall_cycles.into()),
            ("app_cpu_cycles".into(), s.app_cpu_cycles.into()),
            ("revoker_cpu_cycles".into(), s.revoker_cpu_cycles.into()),
            ("app_dram".into(), s.app_dram.into()),
            ("revoker_dram".into(), s.revoker_dram.into()),
            (
                "revoker_dram_per_core".into(),
                Json::Arr(s.revoker_dram_per_core.iter().map(|&d| d.into()).collect()),
            ),
            (
                "revoker_cores".into(),
                Json::Arr(s.revoker_cores.iter().map(|&c| c.into()).collect()),
            ),
            ("pages_swept".into(), s.pages_swept.into()),
            ("peak_rss".into(), s.peak_rss.into()),
            ("blocked_cycles".into(), s.blocked_cycles.into()),
            ("blocked_allocs".into(), s.blocked_allocs.into()),
            ("fault_cycles".into(), s.fault_cycles.into()),
            ("faults".into(), s.faults.into()),
            ("revocations".into(), s.revocations.into()),
            ("mean_alloc_at_revocation".into(), s.mean_alloc_at_revocation.into()),
            ("total_freed_bytes".into(), s.total_freed_bytes.into()),
            ("allocs".into(), s.allocs.into()),
            ("frees".into(), s.frees.into()),
            ("tlb_misses".into(), s.tlb_misses.into()),
            ("tlb_shootdowns".into(), s.tlb_shootdowns.into()),
            ("pte_writes".into(), s.pte_writes.into()),
            ("latency".into(), latency),
            ("pauses".into(), Json::Arr(s.pauses.iter().map(|&p| p.into()).collect())),
        ]);
        let phases = Json::Arr(
            s.phases
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("epoch".into(), p.epoch_index.into()),
                        ("kind".into(), p.kind.label().into()),
                        ("cycles".into(), p.cycles.into()),
                    ])
                })
                .collect(),
        );
        let t = &self.telemetry;
        let spans = Json::Arr(t.spans.iter().map(span_json).collect());
        let events = Json::Arr(t.events.iter().map(|e| event_json(e.at, &e.event)).collect());
        let mut columns: Vec<(String, Json)> = Sample::COLUMNS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let col = t.samples.iter().map(|s| s.values()[i].into()).collect();
                ((*name).to_string(), Json::Arr(col))
            })
            .collect();
        columns.push(("dropped_samples".into(), t.dropped_samples.into()));
        Json::Obj(vec![
            ("version".into(), REPORT_VERSION.into()),
            ("condition".into(), self.condition.into()),
            ("stats".into(), stats),
            ("phases".into(), phases),
            ("spans".into(), spans),
            ("events".into(), events),
            ("dropped_events".into(), t.dropped_events.into()),
            ("series".into(), Json::Obj(columns)),
        ])
    }

    /// The sampled counter series as CSV (header + one row per sample).
    #[must_use]
    pub fn series_csv(&self) -> String {
        let mut out = Sample::COLUMNS.join(",");
        out.push('\n');
        for sample in &self.telemetry.samples {
            let row: Vec<String> = sample.values().iter().map(u64::to_string).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl Deref for RunReport {
    type Target = RunStats;

    fn deref(&self) -> &RunStats {
        &self.stats
    }
}

impl From<RunReport> for RunStats {
    fn from(report: RunReport) -> Self {
        report.into_stats()
    }
}

fn span_json(span: &Span) -> Json {
    Json::Obj(vec![
        ("kind".into(), span.kind.label().into()),
        ("epoch".into(), span.epoch.into()),
        ("start".into(), span.start.into()),
        ("end".into(), span.end.into()),
        ("core".into(), span.core.map_or(Json::Null, Json::from)),
        ("busy_cycles".into(), span.busy_cycles.into()),
    ])
}

fn event_json(at: u64, event: &TelemetryEvent) -> Json {
    let mut pairs: Vec<(String, Json)> =
        vec![("at".into(), at.into()), ("kind".into(), event.label().into())];
    match event {
        TelemetryEvent::Vm(e) => match *e {
            VmEvent::TlbShootdown { page } => pairs.push(("page".into(), page.into())),
            VmEvent::GenerationFlip { generation } => {
                pairs.push(("generation".into(), generation.into()));
            }
            VmEvent::LoadGenerationFault { vaddr, core } => {
                pairs.push(("vaddr".into(), vaddr.into()));
                pairs.push(("core".into(), core.into()));
            }
            _ => {}
        },
        TelemetryEvent::Revoker(e) => match *e {
            RevokerEvent::EpochBegin { epoch } => pairs.push(("epoch".into(), epoch.into())),
            RevokerEvent::EpochEnd { epoch, pages_swept, caps_revoked } => {
                pairs.push(("epoch".into(), epoch.into()));
                pairs.push(("pages_swept".into(), pages_swept.into()));
                pairs.push(("caps_revoked".into(), caps_revoked.into()));
            }
            RevokerEvent::LoadFaultHandled { vaddr, core, cycles } => {
                pairs.push(("vaddr".into(), vaddr.into()));
                pairs.push(("core".into(), core.into()));
                pairs.push(("cycles".into(), cycles.into()));
            }
            _ => {}
        },
        TelemetryEvent::Alloc(e) => match *e {
            AllocEvent::RevocationRequested { reason, allocated_bytes, quarantine_bytes } => {
                pairs.push(("reason".into(), reason.label().into()));
                pairs.push(("allocated_bytes".into(), allocated_bytes.into()));
                pairs.push(("quarantine_bytes".into(), quarantine_bytes.into()));
            }
            AllocEvent::BatchSealed { bytes, epoch } => {
                pairs.push(("bytes".into(), bytes.into()));
                pairs.push(("epoch".into(), epoch.into()));
            }
            AllocEvent::BatchReleased { bytes, sealed_epoch } => {
                pairs.push(("bytes".into(), bytes.into()));
                pairs.push(("sealed_epoch".into(), sealed_epoch.into()));
            }
            _ => {}
        },
        TelemetryEvent::StaleChase { from, slot, to, .. } => {
            pairs.push(("from".into(), (*from).into()));
            pairs.push(("slot".into(), (*slot).into()));
            pairs.push(("to".into(), (*to).into()));
        }
    }
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{SpanKind, TimedEvent};

    fn report() -> RunReport {
        let stats = RunStats {
            wall_cycles: 1000,
            pauses: vec![5, 7],
            tx_latencies: vec![10, 20, 30],
            ..RunStats::default()
        };
        let telemetry = TelemetryData {
            events: vec![TimedEvent {
                at: 42,
                event: TelemetryEvent::Revoker(RevokerEvent::EpochBegin { epoch: 1 }),
            }],
            spans: vec![Span {
                kind: SpanKind::StwPause,
                epoch: 1,
                start: 40,
                end: 45,
                core: None,
                busy_cycles: 5,
            }],
            samples: vec![Sample { at: 100, rss_bytes: 4096, ..Sample::default() }],
            dropped_events: 0,
            dropped_samples: 0,
        };
        RunReport::new("reloaded", stats, telemetry)
    }

    #[test]
    fn deref_exposes_stats() {
        let r = report();
        assert_eq!(r.wall_cycles, 1000);
        assert_eq!(r.latency_summary().count, 3);
        let stats: RunStats = r.into();
        assert_eq!(stats.wall_cycles, 1000);
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let a = report().to_json();
        let b = report().to_json();
        assert_eq!(a, b);
        let v = Json::parse(&a).unwrap();
        assert_eq!(v.get("version").unwrap().as_num(), Some(REPORT_VERSION as i128));
        assert_eq!(v.get("condition").unwrap().as_str(), Some("reloaded"));
        assert_eq!(
            v.get("stats").unwrap().get("wall_cycles").unwrap().as_num(),
            Some(1000)
        );
        assert_eq!(v.get("spans").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("events").unwrap().as_arr().unwrap().len(), 1);
        let series = v.get("series").unwrap();
        assert_eq!(series.get("at").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(
            series.get("rss_bytes").unwrap().as_arr().unwrap()[0].as_num(),
            Some(4096)
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().series_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), Sample::COLUMNS.join(","));
        let row = lines.next().unwrap();
        assert!(row.starts_with("100,4096,"));
        assert_eq!(lines.next(), None);
    }
}

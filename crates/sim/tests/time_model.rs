//! Tests for the simulator's time-accounting model: arrival schedules,
//! queueing latency, contention, and the bus-penalty coupling.

use morello_sim::{Condition, Op, SimConfig, System, CYCLES_PER_SEC};

fn tx(id: u64, work: u64) -> Vec<Op> {
    vec![Op::TxBegin { id }, Op::Compute { cycles: work }, Op::TxEnd { id }]
}

#[test]
fn unscheduled_latency_is_service_time() {
    let cfg = SimConfig::builder().condition(Condition::baseline()).build().unwrap();
    let mut ops = Vec::new();
    for i in 0..10 {
        ops.extend(tx(i, 100_000));
    }
    let s = System::new(cfg).run(ops).unwrap();
    for &l in &s.tx_latencies {
        assert!((100_000..110_000).contains(&l), "latency {l} should be ~service time");
    }
}

#[test]
fn scheduled_arrivals_space_the_run_and_hide_pauses() {
    let interval = 1_000_000u64;
    let cfg = SimConfig::builder()
        .condition(Condition::baseline())
        .tx_interval(interval)
        .build()
        .unwrap();
    let mut ops = Vec::new();
    for i in 0..20 {
        ops.extend(tx(i, 100_000));
    }
    let s = System::new(cfg).run(ops).unwrap();
    assert!(s.wall_cycles >= interval * 19, "schedule must stretch the run");
    // Without latency_from_arrival, latencies exclude schedule slack.
    assert!(s.tx_latencies.iter().all(|&l| l < interval / 2));
}

#[test]
fn arrival_latency_includes_queueing_when_behind() {
    // Service 300k, arrivals every 100k: the queue grows and open-loop
    // latency must grow with it.
    let cfg = SimConfig::builder()
        .condition(Condition::baseline())
        .tx_interval(100_000)
        .latency_from_arrival(true)
        .build()
        .unwrap();
    let mut ops = Vec::new();
    for i in 0..20 {
        ops.extend(tx(i, 300_000));
    }
    let s = System::new(cfg).run(ops).unwrap();
    let first = s.tx_latencies[0];
    let last = *s.tx_latencies.last().unwrap();
    assert!(last > first + 15 * 200_000, "queueing delay must accumulate: {first} -> {last}");
}

#[test]
fn idle_time_consumes_wall_but_not_cpu() {
    let cfg = SimConfig::builder().condition(Condition::baseline()).build().unwrap();
    let ops = vec![Op::Compute { cycles: 50_000 }, Op::ThinkIdle { cycles: 450_000 }];
    let s = System::new(cfg).run(ops).unwrap();
    assert!(s.wall_cycles >= 500_000);
    assert!(s.app_cpu_cycles >= 50_000);
    assert!(s.app_cpu_cycles < 120_000, "idle must not count as CPU time");
}

#[test]
fn contention_slows_ops_only_while_revoking() {
    // Identical churn; without a spare revoker core, wall grows.
    let mk = |spare: bool| {
        let cfg = SimConfig::builder()
            .condition(Condition::reloaded())
            .spare_revoker_core(spare)
            .min_quarantine(64 << 10)
            .build()
            .unwrap();
        let mut ops = Vec::new();
        for i in 0..1500u64 {
            ops.push(Op::Alloc { obj: i % 16, size: 4096 });
            ops.push(Op::Compute { cycles: 20_000 });
            ops.push(Op::Free { obj: i % 16 });
        }
        System::new(cfg).run(ops).unwrap()
    };
    let spare = mk(true);
    let shared = mk(false);
    assert!(shared.wall_cycles > spare.wall_cycles, "core sharing must cost wall time");
}

#[test]
fn cycles_constants_are_consistent() {
    assert_eq!(CYCLES_PER_SEC, 2_500_000_000);
    let cfg = SimConfig::builder().condition(Condition::baseline()).build().unwrap();
    let s = System::new(cfg).run(vec![Op::Compute { cycles: CYCLES_PER_SEC / 100 }]).unwrap();
    assert!((9.0..12.0).contains(&s.wall_ms()), "10 ms of compute should read ~10 ms");
}

#[test]
fn blocked_allocations_are_accounted() {
    // A tiny arena with huge min quarantine forces blocking on revocation.
    let cfg = SimConfig::builder()
        .condition(Condition::cornucopia())
        .heap_len(4 << 20)
        .max_objects(256)
        .min_quarantine(32 << 10)
        .build()
        .unwrap();
    let mut ops = Vec::new();
    for i in 0..2000u64 {
        ops.push(Op::Alloc { obj: i % 8, size: 16 << 10 });
        ops.push(Op::Free { obj: i % 8 });
    }
    let s = System::new(cfg).run(ops).unwrap();
    assert!(s.revocations > 0);
    // Blocking may or may not trigger depending on pass timing, but the
    // counter must never be negative garbage and the run must finish.
    assert!(s.blocked_cycles == 0 || s.blocked_allocs > 0);
}
